package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
	"mlnclean/internal/wal"
)

// The serving-layer half of the incremental parity contract: every result
// version a session acknowledges must equal a from-scratch solo clean of the
// mutated input (table, stats, and independently recomputed repair
// attribution), and must re-serve byte-identically after a restart on the
// same data directory.

// carFixture builds a seeded dirty CAR workload plus its rules text.
func carFixture(t *testing.T, rows int, seed int64) (*dataset.Table, []*rules.Rule, string) {
	t.Helper()
	truth, rs, err := datagen.CAR(datagen.CARConfig{Rows: rows, Seed: seed})
	if err != nil {
		t.Fatalf("datagen.CAR: %v", err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.08, ReplacementRatio: 0.5, Seed: seed + 1})
	if err != nil {
		t.Fatalf("errgen.Inject: %v", err)
	}
	lines := make([]string, len(rs))
	for i, r := range rs {
		lines[i] = r.Canonical()
	}
	return inj.Dirty, rs, strings.Join(lines, "\n")
}

// rawGet fetches a path without decoding, for byte-identity assertions.
func rawGet(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// doEnvelope sends a request and decodes the error envelope.
func doEnvelope(c *client, method, path string, body any) (int, errorBody) {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errorBody
	if resp.StatusCode >= 400 {
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			c.t.Fatalf("%s %s: error response is not the envelope: %v", method, path, err)
		}
	}
	return resp.StatusCode, env
}

// mirrorTable materializes an id → values mirror as a table in ascending-ID
// order, the canonical shape the delta engine serves.
func mirrorTable(schema *dataset.Schema, rows map[int][]string) *dataset.Table {
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	tb := dataset.NewTable(schema)
	for _, id := range ids {
		tb.Tuples = append(tb.Tuples, &dataset.Tuple{ID: id, Values: append([]string(nil), rows[id]...)})
	}
	return tb
}

// assertVersionParity fetches one result version and its repairs and requires
// both to match a from-scratch solo re-clean of the mirror.
func assertVersionParity(t *testing.T, c *client, id string, version int, schema *dataset.Schema, mirror map[int][]string, rs []*rules.Rule) {
	t.Helper()
	ref := mirrorTable(schema, mirror)
	want, err := core.Clean(ref, rs, core.Options{})
	if err != nil {
		t.Fatalf("version %d: reference clean: %v", version, err)
	}
	var res ResultResponse
	if code := c.do("GET", fmt.Sprintf("/v1/sessions/%s/result?version=%d", id, version), nil, &res); code != http.StatusOK {
		t.Fatalf("result version %d: status %d", version, code)
	}
	if res.Version != version || res.Workers != 1 || res.WorkersLost != 0 || res.WallMS != 0 {
		t.Fatalf("version %d metadata = %+v, want deterministic solo metadata", version, res)
	}
	if res.Delta == nil {
		t.Fatalf("version %d has no delta summary", version)
	}
	if res.Delta.DirtyBlocks+res.Delta.ReusedBlocks != len(rs) {
		t.Fatalf("version %d delta blocks %+v do not partition %d rules", version, res.Delta, len(rs))
	}
	if got, wantN := len(res.Rows), want.Clean.Len(); got != wantN {
		t.Fatalf("version %d: %d rows, want %d", version, got, wantN)
	}
	for i, tp := range want.Clean.Tuples {
		if res.IDs[i] != tp.ID || !reflect.DeepEqual(res.Rows[i], tp.Values) {
			t.Fatalf("version %d row %d: got id=%d %v, want id=%d %v",
				version, i, res.IDs[i], res.Rows[i], tp.ID, tp.Values)
		}
	}
	if !reflect.DeepEqual(res.Stats, want.Stats) {
		t.Fatalf("version %d stats:\ngot  %+v\nwant %+v", version, res.Stats, want.Stats)
	}
	var reps RepairsResponse
	if code := c.do("GET", fmt.Sprintf("/v1/sessions/%s/repairs?version=%d", id, version), nil, &reps); code != http.StatusOK {
		t.Fatalf("repairs version %d: status %d", version, code)
	}
	wantReps := computeRepairsTable(schema, ref, want.Repaired, rs, want.Index.PieceSummaries())
	if reps.Version != version || reps.Total != len(wantReps) {
		t.Fatalf("repairs version %d: version=%d total=%d, want version=%d total=%d",
			version, reps.Version, reps.Total, version, len(wantReps))
	}
	if len(reps.Repairs) != len(wantReps) || (len(wantReps) > 0 && !reflect.DeepEqual(reps.Repairs, wantReps)) {
		t.Fatalf("repairs version %d:\ngot  %+v\nwant %+v", version, reps.Repairs, wantReps)
	}
}

// TestMutationSequenceParity drives randomized tuple mutations (updates,
// inserts, deletes) through the HTTP API and checks every minted version
// against an independent full re-clean — then restarts the server on the same
// (in-memory) data directory and requires every version to re-serve
// byte-identically before accepting further mutations. CHAOS_SEEDS widens the
// grid in CI.
func TestMutationSequenceParity(t *testing.T) {
	seeds := chaosSeeds(t)
	for si, seed := range seeds {
		transports := []string{"chan"}
		if si == 0 {
			transports = append(transports, "gob")
		}
		for _, transport := range transports {
			t.Run(fmt.Sprintf("seed=%d/transport=%s", seed, transport), func(t *testing.T) {
				dirty, rs, rulesText := carFixture(t, 120, seed)
				schema := dirty.Schema
				fs := wal.NewMemFS(wal.FaultPlan{})
				cfg := ManagerConfig{WALFS: fs, SnapshotEvery: 4}

				srv1 := newTestServer(t, cfg)
				ts1 := httptest.NewServer(srv1)
				c1 := &client{t: t, base: ts1.URL}
				req := CreateRequest{Rules: rulesText, Attrs: schema.Attrs(), Workers: 2, Transport: transport, Seed: 1}
				info := createSession(c1, req)
				submitBatches(c1, info.ID, splitRows(dirty, 3))
				startClean(c1, info.ID)
				pollDone(c1, info.ID)

				mirror := make(map[int][]string, dirty.Len())
				for i, tp := range dirty.Tuples {
					mirror[i] = append([]string(nil), tp.Values...)
				}
				next := dirty.Len()
				rng := rand.New(rand.NewSource(seed * 131))
				randomValues := func() []string {
					vals := make([]string, schema.Len())
					for j := range vals {
						if rng.Intn(8) == 0 {
							vals[j] = fmt.Sprintf("nv-%d-%d", j, rng.Intn(50))
						} else {
							vals[j] = mirror[anyKey(mirror, rng)][j]
						}
					}
					return vals
				}

				const steps = 8
				for step := 1; step <= steps; step++ {
					var (
						op   string
						row  int
						vals []string
					)
					switch {
					case len(mirror) > 5 && rng.Intn(4) == 0:
						op, row = mutDelete, anyKey(mirror, rng)
					case rng.Intn(2) == 0:
						op, row, vals = mutPut, anyKey(mirror, rng), randomValues()
					default:
						op, row, vals = mutPut, next, randomValues()
					}
					var ack MutateResponse
					path := fmt.Sprintf("/v1/sessions/%s/tuples/%d", info.ID, row)
					var code int
					if op == mutPut {
						code = c1.do("PUT", path, MutateRequest{Values: vals}, &ack)
					} else {
						code = c1.do("DELETE", path, nil, &ack)
					}
					if code != http.StatusOK {
						t.Fatalf("step %d: %s row %d: status %d", step, op, row, code)
					}
					if op == mutPut {
						mirror[row] = append([]string(nil), vals...)
						if row == next {
							next++
						}
					} else {
						delete(mirror, row)
					}
					if ack.Version != 1+step || ack.Tuples != len(mirror) {
						t.Fatalf("step %d ack = %+v, want version %d tuples %d", step, ack, 1+step, len(mirror))
					}
					assertVersionParity(t, c1, info.ID, ack.Version, schema, mirror, rs)
				}

				var st SessionInfo
				if code := c1.do("GET", "/v1/sessions/"+info.ID, nil, &st); code != http.StatusOK || st.Versions != 1+steps {
					t.Fatalf("status versions = %d (code %d), want %d", st.Versions, code, 1+steps)
				}

				// Capture every version's bytes, restart on the same FS, and
				// require identical re-serving — the mutation log replayed
				// through the deterministic engine, no versions persisted.
				type raw struct{ result, repairs []byte }
				raws := make([]raw, 0, 1+steps)
				for v := 1; v <= 1+steps; v++ {
					_, rb := rawGet(t, c1.base, fmt.Sprintf("/v1/sessions/%s/result?version=%d", info.ID, v))
					_, pb := rawGet(t, c1.base, fmt.Sprintf("/v1/sessions/%s/repairs?version=%d", info.ID, v))
					raws = append(raws, raw{result: rb, repairs: pb})
				}
				ts1.Close()
				srv1.Shutdown()

				srv2 := newTestServer(t, cfg)
				defer srv2.Shutdown()
				ts2 := httptest.NewServer(srv2)
				defer ts2.Close()
				c2 := &client{t: t, base: ts2.URL}
				for v := 1; v <= 1+steps; v++ {
					code, rb := rawGet(t, c2.base, fmt.Sprintf("/v1/sessions/%s/result?version=%d", info.ID, v))
					if code != http.StatusOK || !bytes.Equal(rb, raws[v-1].result) {
						t.Fatalf("restart: result version %d diverges (status %d):\ngot  %s\nwant %s",
							v, code, rb, raws[v-1].result)
					}
					code, pb := rawGet(t, c2.base, fmt.Sprintf("/v1/sessions/%s/repairs?version=%d", info.ID, v))
					if code != http.StatusOK || !bytes.Equal(pb, raws[v-1].repairs) {
						t.Fatalf("restart: repairs version %d diverges (status %d)", v, code)
					}
				}
				// And the restarted session keeps accepting mutations.
				row, vals := anyKey(mirror, rng), randomValues()
				var ack MutateResponse
				if code := c2.do("PUT", fmt.Sprintf("/v1/sessions/%s/tuples/%d", info.ID, row), MutateRequest{Values: vals}, &ack); code != http.StatusOK {
					t.Fatalf("post-restart mutation: status %d", code)
				}
				mirror[row] = append([]string(nil), vals...)
				if ack.Version != 2+steps {
					t.Fatalf("post-restart version = %d, want %d", ack.Version, 2+steps)
				}
				assertVersionParity(t, c2, info.ID, ack.Version, schema, mirror, rs)
			})
		}
	}
}

// anyKey draws a random live row id (deterministically, via sorted keys).
func anyKey(m map[int][]string, rng *rand.Rand) int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids[rng.Intn(len(ids))]
}

// TestMutateStatusCodes pins the error envelope and status mapping of the
// mutation-first surface: 422 for semantically bad input, 404 for absent
// rows/versions, 409 for state conflicts, 400 for undecodable bodies — and
// the idempotent session DELETE (204 then 404, never 500).
func TestMutateStatusCodes(t *testing.T) {
	dirty, _, rulesText := carFixture(t, 60, 3)
	srv := newTestServer(t, ManagerConfig{})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &client{t: t, base: ts.URL}
	req := CreateRequest{Rules: rulesText, Attrs: dirty.Schema.Attrs(), Workers: 1, Seed: 1}
	info := createSession(c, req)
	submitBatches(c, info.ID, splitRows(dirty, 2))

	check := func(wantStatus int, wantCode string, gotStatus int, env errorBody, label string) {
		t.Helper()
		if gotStatus != wantStatus || env.Error.Code != wantCode {
			t.Fatalf("%s: got status %d code %q, want %d %q (message %q)",
				label, gotStatus, env.Error.Code, wantStatus, wantCode, env.Error.Message)
		}
	}

	// Mutating an open session is a state conflict.
	goodRow := append([]string(nil), dirty.Tuples[0].Values...)
	st, env := doEnvelope(c, "PUT", "/v1/sessions/"+info.ID+"/tuples/0", MutateRequest{Values: goodRow})
	check(http.StatusConflict, codeConflict, st, env, "mutate while open")

	startClean(c, info.ID)
	pollDone(c, info.ID)

	st, env = doEnvelope(c, "PUT", "/v1/sessions/"+info.ID+"/tuples/0", MutateRequest{Values: []string{"just-one"}})
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "arity mismatch")
	st, env = doEnvelope(c, "PUT", fmt.Sprintf("/v1/sessions/%s/tuples/%d", info.ID, dirty.Len()+7), MutateRequest{Values: goodRow})
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "row beyond next")
	st, env = doEnvelope(c, "PUT", "/v1/sessions/"+info.ID+"/tuples/abc", MutateRequest{Values: goodRow})
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "non-integer row")
	st, env = doEnvelope(c, "DELETE", "/v1/sessions/"+info.ID+"/tuples/9999", nil)
	check(http.StatusNotFound, codeNotFound, st, env, "delete absent row")

	// Undecodable body → 400 bad_request.
	resp, err := http.Post(ts.URL+"/v1/sessions/"+info.ID+"/tuples", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	var badEnv errorBody
	json.NewDecoder(resp.Body).Decode(&badEnv)
	resp.Body.Close()
	check(http.StatusBadRequest, codeBadRequest, resp.StatusCode, badEnv, "garbage batch body")

	// Version addressing: 0 and garbage are invalid, too-new is not found.
	st, env = doEnvelope(c, "GET", "/v1/sessions/"+info.ID+"/result?version=0", nil)
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "version 0")
	st, env = doEnvelope(c, "GET", "/v1/sessions/"+info.ID+"/result?version=two", nil)
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "version garbage")
	st, env = doEnvelope(c, "GET", "/v1/sessions/"+info.ID+"/result?version=99", nil)
	check(http.StatusNotFound, codeNotFound, st, env, "version too new")
	st, env = doEnvelope(c, "GET", "/v1/sessions/"+info.ID+"/repairs?limit=0", nil)
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "limit zero")
	st, env = doEnvelope(c, "GET", "/v1/sessions/"+info.ID+"/repairs?cursor=-4", nil)
	check(http.StatusUnprocessableEntity, codeInvalid, st, env, "negative cursor")

	// A real mutation succeeds, after which rollback is off the table.
	var ack MutateResponse
	if code := c.do("PUT", "/v1/sessions/"+info.ID+"/tuples/0", MutateRequest{Values: goodRow}, &ack); code != http.StatusOK || ack.Version != 2 {
		t.Fatalf("mutation: status %d version %d", code, ack.Version)
	}
	st, env = doEnvelope(c, "POST", "/v1/sessions/"+info.ID+"/rollback", nil)
	check(http.StatusConflict, codeConflict, st, env, "rollback after mutation")

	// And the mirror image: a rolled-back session refuses mutations.
	rb := createSession(c, req)
	submitBatches(c, rb.ID, splitRows(dirty, 2))
	startClean(c, rb.ID)
	pollDone(c, rb.ID)
	if code := c.do("POST", "/v1/sessions/"+rb.ID+"/rollback", nil, nil); code != http.StatusOK {
		t.Fatalf("rollback: status %d", code)
	}
	st, env = doEnvelope(c, "PUT", "/v1/sessions/"+rb.ID+"/tuples/0", MutateRequest{Values: goodRow})
	check(http.StatusConflict, codeConflict, st, env, "mutation after rollback")

	// Idempotent close: 204, then 404 through the envelope — never 500.
	if code := c.do("DELETE", "/v1/sessions/"+info.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("first delete: status %d", code)
	}
	st, env = doEnvelope(c, "DELETE", "/v1/sessions/"+info.ID, nil)
	check(http.StatusNotFound, codeNotFound, st, env, "second delete")
	st, env = doEnvelope(c, "GET", "/v1/sessions/"+info.ID, nil)
	check(http.StatusNotFound, codeNotFound, st, env, "status after delete")
}

// TestRepairsPagination walks the audit trail page by page and requires the
// concatenation to equal the unpaginated response, with a correct cursor
// chain and graceful behavior past the end.
func TestRepairsPagination(t *testing.T) {
	dirty, _, rulesText := carFixture(t, 150, 5)
	srv := newTestServer(t, ManagerConfig{})
	defer srv.Shutdown()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &client{t: t, base: ts.URL}
	info := createSession(c, CreateRequest{Rules: rulesText, Attrs: dirty.Schema.Attrs(), Workers: 1, Seed: 1})
	submitBatches(c, info.ID, splitRows(dirty, 2))
	startClean(c, info.ID)
	pollDone(c, info.ID)

	full := getRepairs(c, info.ID)
	if full.Total != len(full.Repairs) || full.Total < 4 {
		t.Fatalf("unpaginated trail: total=%d len=%d, want an untruncated trail of ≥4", full.Total, len(full.Repairs))
	}
	if full.NextCursor != 0 {
		t.Fatalf("unpaginated response has next_cursor %d", full.NextCursor)
	}
	var walked []Repair
	cursor, pages := 0, 0
	for {
		var page RepairsResponse
		path := fmt.Sprintf("/v1/sessions/%s/repairs?limit=3&cursor=%d", info.ID, cursor)
		if code := c.do("GET", path, nil, &page); code != http.StatusOK {
			t.Fatalf("page at cursor %d: status %d", cursor, code)
		}
		if page.Total != full.Total {
			t.Fatalf("page total %d, want %d", page.Total, full.Total)
		}
		if len(page.Repairs) > 3 {
			t.Fatalf("page at cursor %d has %d repairs, limit 3", cursor, len(page.Repairs))
		}
		walked = append(walked, page.Repairs...)
		pages++
		if page.NextCursor == 0 {
			break
		}
		if page.NextCursor != cursor+3 {
			t.Fatalf("next_cursor %d after cursor %d with limit 3", page.NextCursor, cursor)
		}
		cursor = page.NextCursor
	}
	if pages < 2 || !reflect.DeepEqual(walked, full.Repairs) {
		t.Fatalf("walked %d pages, %d repairs; want the unpaginated trail of %d", pages, len(walked), full.Total)
	}
	var beyond RepairsResponse
	if code := c.do("GET", fmt.Sprintf("/v1/sessions/%s/repairs?limit=3&cursor=%d", info.ID, full.Total+50), nil, &beyond); code != http.StatusOK {
		t.Fatalf("cursor past end: status %d", code)
	}
	if len(beyond.Repairs) != 0 || beyond.Total != full.Total || beyond.NextCursor != 0 {
		t.Fatalf("cursor past end: %+v", beyond)
	}
}
