package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/obs"
)

// The session API, all JSON (full reference in API.md):
//
//	POST   /v1/sessions                     create a session (rules text + schema)
//	POST   /v1/sessions/{id}/tuples         stream one batch of rows
//	POST   /v1/sessions/{id}/clean          start the cleaning run (async, 202)
//	GET    /v1/sessions/{id}                poll session status
//	PUT    /v1/sessions/{id}/tuples/{row}   insert or replace one tuple (new version)
//	DELETE /v1/sessions/{id}/tuples/{row}   delete one tuple (new version)
//	GET    /v1/sessions/{id}/result         cleaned table + stats (?version=N)
//	GET    /v1/sessions/{id}/repairs        repair audit trail (?version=N&limit=&cursor=)
//	POST   /v1/sessions/{id}/rollback       restore pre-repair values
//	DELETE /v1/sessions/{id}                close the session (204; second call 404)
//	GET    /v1/stats                        sessions + model-cache counters
//	GET    /healthz                         liveness
//	GET    /metrics                         Prometheus text exposition
//
// Errors are a uniform envelope, {"error":{"code","message"}}: bad_request
// (400, undecodable body), not_found (404), conflict (409, wrong session
// state), invalid (422, well-formed but semantically bad input), busy (429,
// at the session cap, with Retry-After), durability/internal (500).
//
// Versioning: a done session's result is version 1; every acknowledged tuple
// mutation mints the next version. GET result/repairs serve the latest
// version by default and any older one via ?version=N — versions are
// immutable and re-serve byte-identically, including after a restart on the
// same data directory (the mutation log is replayed through the
// deterministic delta engine).
//
// Durability: with ManagerConfig.DataDir set, every mutation above is
// written to a write-ahead log before the 2xx goes out, and a restart on the
// same directory replays it — live sessions resume, completed results (and
// their audit trails) re-serve byte-identically, closed or evicted sessions
// stay gone.

// Server is the serving subsystem: a session manager plus a model cache
// behind an http.Handler.
type Server struct {
	mgr     *Manager
	cache   *ModelCache
	mux     *http.ServeMux
	started time.Time
}

// New builds a Server over a fresh manager and model cache, replaying the
// write-ahead log first when the config enables durability.
func New(cfg ManagerConfig) (*Server, error) {
	cache := NewModelCache()
	mgr, err := NewManager(cfg, cache)
	if err != nil {
		return nil, err
	}
	s := &Server{
		mgr:     mgr,
		cache:   cache,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	// Every route registers through instrument, so each gets its own latency
	// histogram series plus the shared status-class counters.
	route := func(pattern, name string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, instrument(name, h))
	}
	route("POST /v1/sessions", "create", s.handleCreate)
	route("GET /v1/sessions/{id}", "status", s.handleStatus)
	route("POST /v1/sessions/{id}/tuples", "tuples", s.handleTuples)
	route("PUT /v1/sessions/{id}/tuples/{row}", "tuple-put", s.handleTuplePut)
	route("DELETE /v1/sessions/{id}/tuples/{row}", "tuple-delete", s.handleTupleDelete)
	route("POST /v1/sessions/{id}/clean", "clean", s.handleClean)
	route("GET /v1/sessions/{id}/result", "result", s.handleResult)
	route("GET /v1/sessions/{id}/repairs", "repairs", s.handleRepairs)
	route("POST /v1/sessions/{id}/rollback", "rollback", s.handleRollback)
	route("DELETE /v1/sessions/{id}", "delete", s.handleDelete)
	route("GET /v1/stats", "stats", s.handleStats)
	route("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// The exposition endpoint itself is not instrumented: a scrape should
	// not perturb the series it reads.
	s.mux.Handle("GET /metrics", obs.Default().Handler())
	bindGauges(s)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Manager exposes the session manager (for shutdown and tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Cache exposes the model cache (for tests and stats).
func (s *Server) Cache() *ModelCache { return s.cache }

// Recovery reports what startup replayed from the data directory; nil when
// durability is off.
func (s *Server) Recovery() *RecoverySummary { return s.mgr.Recovery() }

// Shutdown closes every session and stops the eviction sweeper.
func (s *Server) Shutdown() { s.mgr.Shutdown() }

// Machine-readable error codes, one per failure family. Every non-2xx
// response is the same envelope: {"error":{"code":..., "message":...}}.
const (
	codeBadRequest = "bad_request" // 400: body could not be decoded
	codeNotFound   = "not_found"   // 404: no such session / row / version
	codeConflict   = "conflict"    // 409: wrong session state for the call
	codeInvalid    = "invalid"     // 422: well-formed but semantically bad input
	codeBusy       = "busy"        // 429: at the session cap, retry later
	codeDurability = "durability"  // 500: WAL rejected the record, not acknowledged
	codeInternal   = "internal"    // 500: anything else on the server's side
)

// errorDetail is the uniform error payload.
type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorBody struct {
	Error errorDetail `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

// writeSessionError maps a session-layer error to its envelope: the sentinel
// wraps pick the family, anything else is a session-state conflict.
func writeSessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, codeNotFound, err)
	case errors.Is(err, ErrInvalid):
		writeError(w, http.StatusUnprocessableEntity, codeInvalid, err)
	case errors.Is(err, ErrBadInput):
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusInternalServerError, codeDurability, err)
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, codeBusy, err)
	default:
		writeError(w, http.StatusConflict, codeConflict, err)
	}
}

// Request-body caps: rules/flags are small; tuple batches may be large but
// must still be bounded so a single request cannot exhaust memory.
const (
	maxCreateBody = 1 << 20  // 1 MiB
	maxTuplesBody = 64 << 20 // 64 MiB
)

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxCreateBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad create request: %w", err))
		return
	}
	sess, err := s.mgr.Create(req)
	if err != nil {
		if errors.Is(err, ErrBusy) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, codeBusy, err)
			return
		}
		if errors.Is(err, ErrDurability) {
			writeError(w, http.StatusInternalServerError, codeDurability, err)
			return
		}
		// Unparseable rules, a bad schema, an unknown transport: the request
		// was decodable but unusable.
		writeError(w, http.StatusUnprocessableEntity, codeInvalid, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

// session resolves the {id} path segment, writing the 404 itself on a miss.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, codeNotFound, err)
		return nil
	}
	return sess
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

// TuplesRequest is one streamed batch of rows in schema order.
type TuplesRequest struct {
	Rows [][]string `json:"rows"`
}

// TuplesResponse acknowledges a batch.
type TuplesResponse struct {
	Received int `json:"received"`
	Total    int `json:"total"`
}

func (s *Server) handleTuples(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req TuplesRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxTuplesBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad tuples request: %w", err))
		return
	}
	// Malformed rows are the client's fault (400); a durability failure is
	// ours (500, the batch is NOT stored); everything else is a session-state
	// conflict (409), worth retrying after a state change.
	if err := sess.Submit(req.Rows); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TuplesResponse{Received: len(req.Rows), Total: sess.Info().Tuples})
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	if err := sess.Clean(s.cache); err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, sess.Info())
}

// ResultResponse is the cleaned table plus run metadata.
type ResultResponse struct {
	// Version identifies which result this is: 1 for the batch run, one more
	// per applied tuple mutation. A given version always serves the same
	// bytes, including after a restart.
	Version int        `json:"version"`
	Attrs   []string   `json:"attrs"`
	Rows    [][]string `json:"rows"`
	// IDs are the cleaned tuples' original table ids (gaps mark removed
	// duplicates).
	IDs   []int      `json:"ids"`
	Stats core.Stats `json:"stats"`
	// Workers is the run's worker count; WorkersLost how many of them died
	// and were recovered from mid-run (the result is unaffected — recovery
	// re-runs the lost partitions deterministically). Versions ≥ 2 are
	// computed by the in-process delta engine: one worker, nothing lost.
	Workers       int   `json:"workers"`
	WorkersLost   int   `json:"workers_lost"`
	WeightsCached bool  `json:"weights_cached"`
	WallMS        int64 `json:"wall_ms"`
	// RolledBack marks that the session's repairs were reverted: Rows/IDs
	// are the original streamed values, not the cleaned output.
	RolledBack bool `json:"rolled_back,omitempty"`
	// Plan lists the selectivity planner's per-rule scan choices as rendered
	// plan-dump lines (why each rule's evaluation was ordered the way it
	// was); empty when the run disabled the planner.
	Plan []string `json:"plan,omitempty"`
	// Delta reports how much of version N-1's work this version reused;
	// absent on version 1.
	Delta *DeltaSummary `json:"delta,omitempty"`
}

// DeltaSummary is the wire form of one incremental re-clean's accounting.
type DeltaSummary struct {
	DirtyBlocks   int `json:"dirty_blocks"`
	ReusedBlocks  int `json:"reused_blocks"`
	RefusedTuples int `json:"refused_tuples"`
	ReusedTuples  int `json:"reused_tuples"`
}

func deltaSummary(d core.DeltaStats) *DeltaSummary {
	return &DeltaSummary{
		DirtyBlocks:   d.DirtyBlocks,
		ReusedBlocks:  d.ReusedBlocks,
		RefusedTuples: d.RefusedTuples,
		ReusedTuples:  d.ReusedTuples,
	}
}

// version resolves the ?version query parameter against a session: absent
// means latest, 1 is the batch result, anything non-integer or < 1 is 422
// (the 404 for a too-new version comes later, from Versioned). Writes the
// error itself; ok reports whether to proceed.
func (s *Server) version(w http.ResponseWriter, r *http.Request, sess *Session) (int, bool) {
	q := r.URL.Query().Get("version")
	if q == "" {
		v := sess.LatestVersion()
		if v == 0 {
			v = 1 // not done yet: fall through to the legacy path's 409
		}
		return v, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 1 {
		writeError(w, http.StatusUnprocessableEntity, codeInvalid,
			fmt.Errorf("%w: version %q must be a positive integer", ErrInvalid, q))
		return 0, false
	}
	return v, true
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	v, ok := s.version(w, r, sess)
	if !ok {
		return
	}
	if v >= 2 {
		entry, err := sess.Versioned(v)
		if err != nil {
			writeSessionError(w, err)
			return
		}
		serve := entry.res.Clean
		resp := ResultResponse{
			Version: v,
			Attrs:   serve.Schema.Attrs(),
			Rows:    make([][]string, serve.Len()),
			IDs:     make([]int, serve.Len()),
			Stats:   entry.res.Stats,
			Workers: 1,
			Delta:   deltaSummary(entry.delta),
		}
		for i, t := range serve.Tuples {
			resp.Rows[i] = t.Values
			resp.IDs[i] = t.ID
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := sess.Result()
	if err != nil {
		writeSessionError(w, err)
		return
	}
	info := sess.Info()
	serve := res.Clean
	rolled := false
	if tb := sess.Restored(); tb != nil {
		serve, rolled = tb, true
	}
	resp := ResultResponse{
		Version:       1,
		Attrs:         serve.Schema.Attrs(),
		Rows:          make([][]string, serve.Len()),
		IDs:           make([]int, serve.Len()),
		Stats:         res.Stats,
		Workers:       res.Workers,
		WorkersLost:   res.WorkersLost,
		WeightsCached: info.WeightsCached,
		WallMS:        res.WallTime.Milliseconds(),
		RolledBack:    rolled,
		Plan:          res.Plan,
	}
	for i, t := range serve.Tuples {
		resp.Rows[i] = t.Values
		resp.IDs[i] = t.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// RepairsResponse is one page of the session's ordered repair audit trail.
type RepairsResponse struct {
	Session string `json:"session"`
	// Version is the result version this trail explains.
	Version int `json:"version"`
	// Total is the trail's full length; Repairs is the requested window of it
	// (the whole trail when the request did not paginate).
	Total   int      `json:"total"`
	Repairs []Repair `json:"repairs"`
	// NextCursor is the cursor of the page after this one; absent on the last
	// page and on unpaginated responses.
	NextCursor int  `json:"next_cursor,omitempty"`
	RolledBack bool `json:"rolled_back,omitempty"`
}

// pageParam parses a non-negative integer query parameter, writing the 422
// itself on garbage.
func pageParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, true
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 || (name == "limit" && n == 0) {
		writeError(w, http.StatusUnprocessableEntity, codeInvalid,
			fmt.Errorf("%w: %s %q must be a positive integer", ErrInvalid, name, q))
		return 0, false
	}
	return n, true
}

func (s *Server) handleRepairs(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	v, ok := s.version(w, r, sess)
	if !ok {
		return
	}
	limit, ok := pageParam(w, r, "limit")
	if !ok {
		return
	}
	cursor, ok := pageParam(w, r, "cursor")
	if !ok {
		return
	}
	var reps []Repair
	var rolled bool
	if v >= 2 {
		entry, err := sess.Versioned(v)
		if err != nil {
			writeSessionError(w, err)
			return
		}
		reps = entry.repairs
	} else {
		var err error
		reps, rolled, err = sess.Repairs()
		if err != nil {
			writeSessionError(w, err)
			return
		}
	}
	resp := RepairsResponse{Session: sess.ID, Version: v, Total: len(reps), RolledBack: rolled}
	// Window the trail: cursor past the end is an empty page, not an error
	// (the client walked off the tail); a full page that ends short of the
	// total links the next one.
	if cursor > len(reps) {
		cursor = len(reps)
	}
	end := len(reps)
	if limit > 0 && cursor+limit < end {
		end = cursor + limit
		resp.NextCursor = end
	}
	resp.Repairs = reps[cursor:end]
	if resp.Repairs == nil {
		resp.Repairs = []Repair{} // a clean table has an empty trail, not a null one
	}
	writeJSON(w, http.StatusOK, resp)
}

// MutateRequest is the body of PUT .../tuples/{row}.
type MutateRequest struct {
	// Values is the tuple's new values, in schema order.
	Values []string `json:"values"`
}

// MutateResponse acknowledges one tuple mutation and names the result
// version it minted.
type MutateResponse struct {
	Session string `json:"session"`
	Version int    `json:"version"`
	Op      string `json:"op"`
	Row     int    `json:"row"`
	// Tuples is the mutated input table's live row count.
	Tuples int `json:"tuples"`
	// Repairs is the new version's audit-trail length.
	Repairs int           `json:"repairs"`
	Delta   *DeltaSummary `json:"delta"`
	WallMS  int64         `json:"wall_ms"`
}

// tupleRow resolves the {row} path segment; non-integer rows are 422.
func tupleRow(w http.ResponseWriter, r *http.Request) (int, bool) {
	q := r.PathValue("row")
	row, err := strconv.Atoi(q)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, codeInvalid,
			fmt.Errorf("%w: row %q must be an integer", ErrInvalid, q))
		return 0, false
	}
	return row, true
}

func (s *Server) handleTuplePut(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	row, ok := tupleRow(w, r)
	if !ok {
		return
	}
	var req MutateRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxCreateBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad tuple request: %w", err))
		return
	}
	s.finishMutate(w, sess, mutPut, row, req.Values)
}

func (s *Server) handleTupleDelete(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	row, ok := tupleRow(w, r)
	if !ok {
		return
	}
	s.finishMutate(w, sess, mutDelete, row, nil)
}

func (s *Server) finishMutate(w http.ResponseWriter, sess *Session, op string, row int, values []string) {
	version, entry, err := sess.Mutate(op, row, values)
	if err != nil {
		writeSessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Session: sess.ID,
		Version: version,
		Op:      op,
		Row:     row,
		Tuples:  entry.tuples,
		Repairs: len(entry.repairs),
		Delta:   deltaSummary(entry.delta),
		WallMS:  entry.delta.Wall.Milliseconds(),
	})
}

// RollbackResponse is the restored pre-repair table.
type RollbackResponse struct {
	Session string `json:"session"`
	// Reverted is the number of audited repairs undone.
	Reverted int        `json:"reverted"`
	Attrs    []string   `json:"attrs"`
	Rows     [][]string `json:"rows"`
	IDs      []int      `json:"ids"`
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	tb, reverted, err := sess.Rollback()
	if err != nil {
		writeSessionError(w, err)
		return
	}
	resp := RollbackResponse{
		Session:  sess.ID,
		Reverted: reverted,
		Attrs:    tb.Schema.Attrs(),
		Rows:     make([][]string, tb.Len()),
		IDs:      make([]int, tb.Len()),
	}
	for i, t := range tb.Tuples {
		resp.Rows[i] = t.Values
		resp.IDs[i] = t.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	// Idempotent close: the first DELETE gets 204, any repeat (or an unknown
	// id) gets 404 — never a 500 unless the WAL refused the tombstone, which
	// means the close was NOT acknowledged.
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		if errors.Is(err, ErrDurability) {
			writeError(w, http.StatusInternalServerError, codeDurability, err)
			return
		}
		writeError(w, http.StatusNotFound, codeNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// StatsResponse is the server-wide status snapshot.
type StatsResponse struct {
	Sessions    []SessionInfo `json:"sessions"`
	MaxSessions int           `json:"max_sessions"`
	Cache       CacheStats    `json:"cache"`
	// UptimeSeconds is the age of this server instance.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Build identifies the running binary.
	Build BuildInfo `json:"build"`
	// Recovery reports what startup replayed from the WAL; absent when
	// durability is off.
	Recovery *RecoverySummary `json:"recovery,omitempty"`
}

// BuildInfo is the binary's identity as recorded by the Go toolchain.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from; empty when the
	// build ran outside a checkout (or with -buildvcs=false).
	Revision string `json:"revision,omitempty"`
	// Modified marks a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// buildInfo reads the toolchain-embedded metadata once; `go test` binaries
// carry no VCS stamp, so every field but GoVersion may be empty.
var buildInfo = sync.OnceValue(func() BuildInfo {
	var b BuildInfo
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = info.GoVersion
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			b.Revision = kv.Value
		case "vcs.modified":
			b.Modified = kv.Value == "true"
		}
	}
	return b
})

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Sessions:      s.mgr.List(),
		MaxSessions:   s.mgr.cfg.MaxSessions,
		Cache:         s.cache.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         buildInfo(),
		Recovery:      s.mgr.Recovery(),
	})
}
