package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/obs"
)

// The session API, all JSON:
//
//	POST   /v1/sessions               create a session (rules text + schema)
//	POST   /v1/sessions/{id}/tuples   stream one batch of rows
//	POST   /v1/sessions/{id}/clean    start the cleaning run (async, 202)
//	GET    /v1/sessions/{id}          poll session status
//	GET    /v1/sessions/{id}/result   fetch the cleaned table + stats
//	GET    /v1/sessions/{id}/repairs  ordered repair audit trail
//	POST   /v1/sessions/{id}/rollback restore pre-repair values
//	DELETE /v1/sessions/{id}          close the session
//	GET    /v1/stats                  sessions + model-cache counters
//	GET    /healthz                   liveness
//	GET    /metrics                   Prometheus text exposition
//
// Backpressure: creating a session past the manager's cap returns 429 with
// Retry-After. Sessions idle past the manager's timeout are evicted and
// subsequent requests against them return 404.
//
// Durability: with ManagerConfig.DataDir set, every mutation above is
// written to a write-ahead log before the 2xx goes out, and a restart on the
// same directory replays it — live sessions resume, completed results (and
// their audit trails) re-serve byte-identically, closed or evicted sessions
// stay gone.

// Server is the serving subsystem: a session manager plus a model cache
// behind an http.Handler.
type Server struct {
	mgr     *Manager
	cache   *ModelCache
	mux     *http.ServeMux
	started time.Time
}

// New builds a Server over a fresh manager and model cache, replaying the
// write-ahead log first when the config enables durability.
func New(cfg ManagerConfig) (*Server, error) {
	cache := NewModelCache()
	mgr, err := NewManager(cfg, cache)
	if err != nil {
		return nil, err
	}
	s := &Server{
		mgr:     mgr,
		cache:   cache,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	// Every route registers through instrument, so each gets its own latency
	// histogram series plus the shared status-class counters.
	route := func(pattern, name string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, instrument(name, h))
	}
	route("POST /v1/sessions", "create", s.handleCreate)
	route("GET /v1/sessions/{id}", "status", s.handleStatus)
	route("POST /v1/sessions/{id}/tuples", "tuples", s.handleTuples)
	route("POST /v1/sessions/{id}/clean", "clean", s.handleClean)
	route("GET /v1/sessions/{id}/result", "result", s.handleResult)
	route("GET /v1/sessions/{id}/repairs", "repairs", s.handleRepairs)
	route("POST /v1/sessions/{id}/rollback", "rollback", s.handleRollback)
	route("DELETE /v1/sessions/{id}", "delete", s.handleDelete)
	route("GET /v1/stats", "stats", s.handleStats)
	route("GET /healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// The exposition endpoint itself is not instrumented: a scrape should
	// not perturb the series it reads.
	s.mux.Handle("GET /metrics", obs.Default().Handler())
	bindGauges(s)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Manager exposes the session manager (for shutdown and tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Cache exposes the model cache (for tests and stats).
func (s *Server) Cache() *ModelCache { return s.cache }

// Recovery reports what startup replayed from the data directory; nil when
// durability is off.
func (s *Server) Recovery() *RecoverySummary { return s.mgr.Recovery() }

// Shutdown closes every session and stops the eviction sweeper.
func (s *Server) Shutdown() { s.mgr.Shutdown() }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// Request-body caps: rules/flags are small; tuple batches may be large but
// must still be bounded so a single request cannot exhaust memory.
const (
	maxCreateBody = 1 << 20  // 1 MiB
	maxTuplesBody = 64 << 20 // 64 MiB
)

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxCreateBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad create request: %w", err))
		return
	}
	sess, err := s.mgr.Create(req)
	if err != nil {
		if errors.Is(err, ErrBusy) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

// session resolves the {id} path segment, writing the 404 itself on a miss.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil
	}
	return sess
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if sess := s.session(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

// TuplesRequest is one streamed batch of rows in schema order.
type TuplesRequest struct {
	Rows [][]string `json:"rows"`
}

// TuplesResponse acknowledges a batch.
type TuplesResponse struct {
	Received int `json:"received"`
	Total    int `json:"total"`
}

func (s *Server) handleTuples(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req TuplesRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxTuplesBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tuples request: %w", err))
		return
	}
	if err := sess.Submit(req.Rows); err != nil {
		// Malformed rows are the client's fault (400); a durability failure
		// is ours (500, the batch is NOT stored); everything else is a
		// session-state conflict (409), worth retrying after a state change.
		if errors.Is(err, ErrBadInput) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if errors.Is(err, ErrDurability) {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, TuplesResponse{Received: len(req.Rows), Total: sess.Info().Tuples})
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	if err := sess.Clean(s.cache); err != nil {
		if errors.Is(err, ErrDurability) {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, sess.Info())
}

// ResultResponse is the cleaned table plus run metadata.
type ResultResponse struct {
	Attrs []string   `json:"attrs"`
	Rows  [][]string `json:"rows"`
	// IDs are the cleaned tuples' original table ids (gaps mark removed
	// duplicates).
	IDs   []int      `json:"ids"`
	Stats core.Stats `json:"stats"`
	// Workers is the run's worker count; WorkersLost how many of them died
	// and were recovered from mid-run (the result is unaffected — recovery
	// re-runs the lost partitions deterministically).
	Workers       int   `json:"workers"`
	WorkersLost   int   `json:"workers_lost"`
	WeightsCached bool  `json:"weights_cached"`
	WallMS        int64 `json:"wall_ms"`
	// RolledBack marks that the session's repairs were reverted: Rows/IDs
	// are the original streamed values, not the cleaned output.
	RolledBack bool `json:"rolled_back,omitempty"`
	// Plan lists the selectivity planner's per-rule scan choices as rendered
	// plan-dump lines (why each rule's evaluation was ordered the way it
	// was); empty when the run disabled the planner.
	Plan []string `json:"plan,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	res, err := sess.Result()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	info := sess.Info()
	serve := res.Clean
	rolled := false
	if tb := sess.Restored(); tb != nil {
		serve, rolled = tb, true
	}
	resp := ResultResponse{
		Attrs:         serve.Schema.Attrs(),
		Rows:          make([][]string, serve.Len()),
		IDs:           make([]int, serve.Len()),
		Stats:         res.Stats,
		Workers:       res.Workers,
		WorkersLost:   res.WorkersLost,
		WeightsCached: info.WeightsCached,
		WallMS:        res.WallTime.Milliseconds(),
		RolledBack:    rolled,
		Plan:          res.Plan,
	}
	for i, t := range serve.Tuples {
		resp.Rows[i] = t.Values
		resp.IDs[i] = t.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

// RepairsResponse is the session's ordered repair audit trail.
type RepairsResponse struct {
	Session    string   `json:"session"`
	Repairs    []Repair `json:"repairs"`
	RolledBack bool     `json:"rolled_back,omitempty"`
}

func (s *Server) handleRepairs(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	reps, rolled, err := sess.Repairs()
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if reps == nil {
		reps = []Repair{} // a clean table has an empty trail, not a null one
	}
	writeJSON(w, http.StatusOK, RepairsResponse{Session: sess.ID, Repairs: reps, RolledBack: rolled})
}

// RollbackResponse is the restored pre-repair table.
type RollbackResponse struct {
	Session string `json:"session"`
	// Reverted is the number of audited repairs undone.
	Reverted int        `json:"reverted"`
	Attrs    []string   `json:"attrs"`
	Rows     [][]string `json:"rows"`
	IDs      []int      `json:"ids"`
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	tb, reverted, err := sess.Rollback()
	if err != nil {
		if errors.Is(err, ErrDurability) {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeError(w, http.StatusConflict, err)
		return
	}
	resp := RollbackResponse{
		Session:  sess.ID,
		Reverted: reverted,
		Attrs:    tb.Schema.Attrs(),
		Rows:     make([][]string, tb.Len()),
		IDs:      make([]int, tb.Len()),
	}
	for i, t := range tb.Tuples {
		resp.Rows[i] = t.Values
		resp.IDs[i] = t.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// StatsResponse is the server-wide status snapshot.
type StatsResponse struct {
	Sessions    []SessionInfo `json:"sessions"`
	MaxSessions int           `json:"max_sessions"`
	Cache       CacheStats    `json:"cache"`
	// UptimeSeconds is the age of this server instance.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Build identifies the running binary.
	Build BuildInfo `json:"build"`
	// Recovery reports what startup replayed from the WAL; absent when
	// durability is off.
	Recovery *RecoverySummary `json:"recovery,omitempty"`
}

// BuildInfo is the binary's identity as recorded by the Go toolchain.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from; empty when the
	// build ran outside a checkout (or with -buildvcs=false).
	Revision string `json:"revision,omitempty"`
	// Modified marks a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// buildInfo reads the toolchain-embedded metadata once; `go test` binaries
// carry no VCS stamp, so every field but GoVersion may be empty.
var buildInfo = sync.OnceValue(func() BuildInfo {
	var b BuildInfo
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = info.GoVersion
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			b.Revision = kv.Value
		case "vcs.modified":
			b.Modified = kv.Value == "true"
		}
	}
	return b
})

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Sessions:      s.mgr.List(),
		MaxSessions:   s.mgr.cfg.MaxSessions,
		Cache:         s.cache.Stats(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         buildInfo(),
		Recovery:      s.mgr.Recovery(),
	})
}
