// Package server is mlnserve's long-running cleaning service: an HTTP/JSON
// session API (create session → stream tuple batches → trigger clean → poll
// → fetch repairs) layered on the distributed Executor, with a session
// manager (bounded concurrency, idle eviction, per-session cancellation) and
// a model cache that amortizes rule parsing and Eq. 6 weight learning across
// requests — the HoloClean/PClean lesson that repeat workloads must not pay
// for compilation twice.
package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/rules"
)

// Model is an interned rule set plus, per learning configuration, the
// merged Eq. 6 weight vector a completed run produced. Models are keyed by
// rules.CanonicalHash, so two sessions whose rule texts differ only in
// order, ids, or spelling share one model; weight vectors are additionally
// keyed by an options fingerprint (τ, metric, workers, seed, batch size —
// everything that shapes what the learner sees), because weights learned
// under one configuration are not valid answers for another.
type Model struct {
	Hash  string
	Rules []*rules.Rule

	mu      sync.Mutex
	weights map[string][]index.PieceSummary // options fingerprint → vector
	vocab   *intern.Frozen                  // frozen value vocabulary (lazy)
}

// Weights returns a copy of the cached Eq. 6 weight vector for the given
// options fingerprint, or nil when no completed run has populated it.
func (m *Model) Weights(fp string) []index.PieceSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return index.CopySummaries(m.weights[fp])
}

// setWeights stores a learned weight vector (first writer per fingerprint
// wins; later runs relearn only if the slot was empty when they began). A
// stored vector extends the model's value vocabulary, so the cached frozen
// snapshot is invalidated for lazy rebuild.
func (m *Model) setWeights(fp string, ws []index.PieceSummary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(ws) == 0 || m.weights[fp] != nil {
		return
	}
	if m.weights == nil {
		m.weights = make(map[string][]index.PieceSummary)
	}
	if len(m.weights) >= maxWeightVariants {
		return // bound per-model memory; rare configs just relearn
	}
	m.weights[fp] = index.CopySummaries(ws)
	m.vocab = nil
}

// Vocabulary returns the model's frozen value dictionary base: the rule
// constants plus every value named by a cached weight vector — the recurring
// vocabulary of the workloads this model serves. Each session derives its
// own dictionary from the base (intern.NewDictWithBase), so repeat workloads
// intern their dataset's common values once per model instead of once per
// session. Built lazily and re-frozen after new weight vectors land; safe
// for concurrent use.
func (m *Model) Vocabulary() *intern.Frozen {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vocab == nil {
		d := intern.NewDict()
		for _, r := range m.Rules {
			for _, p := range r.Reason {
				if p.Const != "" {
					d.Intern(p.Const)
				}
			}
			for _, p := range r.Result {
				if p.Const != "" {
					d.Intern(p.Const)
				}
			}
		}
		fps := make([]string, 0, len(m.weights))
		for fp := range m.weights {
			fps = append(fps, fp)
		}
		sort.Strings(fps) // deterministic ID assignment
		for _, fp := range fps {
			ws := m.weights[fp]
			for i := range ws {
				for _, v := range ws[i].IdentityValues() {
					d.Intern(v)
				}
			}
		}
		m.vocab = d.Freeze()
	}
	return m.vocab
}

// maxWeightVariants bounds the cached weight vectors per model; beyond it,
// new option fingerprints fall back to learning every run.
const maxWeightVariants = 8

// CacheStats are the model cache's hit/miss counters. RuleHits counts
// session creations that reused an interned rule set (skipping parsing when
// the text matched verbatim); WeightHits counts runs that started with a
// cached weight vector and therefore skipped weight learning entirely.
type CacheStats struct {
	RuleHits     int64 `json:"rule_hits"`
	RuleMisses   int64 `json:"rule_misses"`
	WeightHits   int64 `json:"weight_hits"`
	WeightMisses int64 `json:"weight_misses"`
	Models       int   `json:"models"`
}

// ModelCache interns parsed rule sets and learned weight vectors. All
// methods are safe for concurrent use. Both index levels are bounded with
// FIFO eviction — the daemon is long-running, so adversarial or merely
// varied rule texts must not grow resident memory monotonically.
type ModelCache struct {
	mu        sync.Mutex
	byHash    map[string]*Model
	byText    map[string]string // exact rules text → canonical hash (skips parsing)
	hashOrder []string          // FIFO insertion order for byHash eviction
	textOrder []string          // FIFO insertion order for byText eviction
	stats     CacheStats
}

// maxModels and maxTexts bound the two cache levels (FIFO eviction past
// them). A text entry is ~the rules text; a model carries parsed rules plus
// up to maxWeightVariants weight vectors.
const (
	maxModels = 256
	maxTexts  = 4096
)

// NewModelCache returns an empty cache.
func NewModelCache() *ModelCache {
	return &ModelCache{
		byHash: make(map[string]*Model),
		byText: make(map[string]string),
	}
}

// Intern resolves a rules text (one constraint per line, internal/rules
// syntax) to its cached model, parsing and inserting on first sight. The
// boolean reports whether the model was already present.
func (c *ModelCache) Intern(text string) (*Model, bool, error) {
	c.mu.Lock()
	if h, ok := c.byText[text]; ok {
		// The model may have been FIFO-evicted out from under the text
		// index; only a live model counts as a hit.
		if m := c.byHash[h]; m != nil {
			c.stats.RuleHits++
			c.mu.Unlock()
			return m, true, nil
		}
	}
	c.mu.Unlock()

	// Parse outside the lock — rule texts are small but parsing under a
	// global lock would serialize unrelated session creations.
	rs, err := rules.ParseList(strings.NewReader(text))
	if err != nil {
		return nil, false, err
	}
	if len(rs) == 0 {
		return nil, false, fmt.Errorf("server: empty rule set")
	}
	h := rules.CanonicalHash(rs)

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, known := c.byText[text]; !known {
		if len(c.byText) >= maxTexts {
			delete(c.byText, c.textOrder[0])
			c.textOrder = c.textOrder[1:]
		}
		c.byText[text] = h
		c.textOrder = append(c.textOrder, text)
	}
	if m, ok := c.byHash[h]; ok {
		// Different spelling of an already-interned rule set.
		c.stats.RuleHits++
		return m, true, nil
	}
	if len(c.byHash) >= maxModels {
		evicted := c.hashOrder[0]
		c.hashOrder = c.hashOrder[1:]
		delete(c.byHash, evicted)
	}
	m := &Model{Hash: h, Rules: rs}
	c.byHash[h] = m
	c.hashOrder = append(c.hashOrder, h)
	c.stats.RuleMisses++
	return m, false, nil
}

// TakeWeights returns a copy of the model's cached weight vector for the
// options fingerprint, counting the lookup as a weight hit or miss.
func (c *ModelCache) TakeWeights(m *Model, fp string) []index.PieceSummary {
	ws := m.Weights(fp)
	c.mu.Lock()
	if ws != nil {
		c.stats.WeightHits++
	} else {
		c.stats.WeightMisses++
	}
	c.mu.Unlock()
	return ws
}

// StoreWeights records a completed run's merged weight vector on the model
// under the options fingerprint it was learned with.
func (c *ModelCache) StoreWeights(m *Model, fp string, ws []index.PieceSummary) {
	m.setWeights(fp, ws)
}

// Stats returns a snapshot of the counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Models = len(c.byHash)
	return st
}
