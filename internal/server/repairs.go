package server

import (
	"fmt"
	"sort"

	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// Repair is one applied cell change in the audit trail: which tuple and
// attribute, the dirty and repaired values, and the rule (with its learned
// Eq. 6 weight) the change is attributed to. Repairs are ordered by tuple
// then schema column, so the trail reads top-to-bottom like the table.
//
// Attribution is a projection lookup: the repaired row projected onto a
// candidate rule's attributes must match a piece in the run's merged weight
// vector — the repair moved the tuple into that piece — and among matching
// rules the heaviest piece wins (ties break on rule id for determinism). A
// repair no piece explains (an RSC distance-repair, for instance) carries an
// empty rule and zero weight.
type Repair struct {
	Tuple  int     `json:"tuple"`
	Attr   string  `json:"attr"`
	Old    string  `json:"old"`
	New    string  `json:"new"`
	Rule   string  `json:"rule,omitempty"`
	Weight float64 `json:"weight,omitempty"`
}

// computeRepairs diffs the session's streamed input against the repaired
// table (pre-dedup, tuple IDs are stream positions) and attributes each
// changed cell.
func computeRepairs(schema *dataset.Schema, batches [][][]string, repaired *dataset.Table, rs []*rules.Rule, merged []index.PieceSummary) []Repair {
	if repaired == nil {
		return nil
	}
	var flat [][]string
	for _, b := range batches {
		flat = append(flat, b...)
	}
	orig := make(map[int][]string, len(flat))
	for i, row := range flat {
		orig[i] = row
	}
	return repairsAgainst(schema, orig, repaired, rs, merged)
}

// computeRepairsTable diffs a mutated input table against its re-cleaned
// output — the versioned-result flavor of computeRepairs, where tuple IDs are
// store row ids (with gaps from deletes) rather than stream positions.
func computeRepairsTable(schema *dataset.Schema, dirty, repaired *dataset.Table, rs []*rules.Rule, merged []index.PieceSummary) []Repair {
	if repaired == nil {
		return nil
	}
	orig := make(map[int][]string, dirty.Len())
	for _, t := range dirty.Tuples {
		orig[t.ID] = t.Values
	}
	return repairsAgainst(schema, orig, repaired, rs, merged)
}

// repairsAgainst diffs the repaired table against the original rows (keyed by
// tuple ID) and attributes each changed cell.
func repairsAgainst(schema *dataset.Schema, origRows map[int][]string, repaired *dataset.Table, rs []*rules.Rule, merged []index.PieceSummary) []Repair {
	weightOf := make(map[string]float64, len(merged))
	for i := range merged {
		s := &merged[i]
		weightOf[s.RuleID+"\x1f"+dataset.JoinKey(s.IdentityValues())] = s.Weight
	}
	attrs := schema.Attrs()
	var out []Repair
	for _, t := range repaired.Tuples {
		orig, ok := origRows[t.ID]
		if !ok || len(orig) != len(t.Values) {
			continue
		}
		for j, attr := range attrs {
			if orig[j] == t.Values[j] {
				continue
			}
			rule, weight := attributeRepair(repaired, t, attr, rs, weightOf)
			out = append(out, Repair{
				Tuple: t.ID, Attr: attr,
				Old: orig[j], New: t.Values[j],
				Rule: rule, Weight: weight,
			})
		}
	}
	sort.SliceStable(out, func(i, k int) bool {
		if out[i].Tuple != out[k].Tuple {
			return out[i].Tuple < out[k].Tuple
		}
		return schema.MustIndex(out[i].Attr) < schema.MustIndex(out[k].Attr)
	})
	return out
}

// attributeRepair finds the rule whose weighted piece the repaired tuple now
// satisfies on attr.
func attributeRepair(tb *dataset.Table, t *dataset.Tuple, attr string, rs []*rules.Rule, weightOf map[string]float64) (string, float64) {
	bestRule, bestWeight, found := "", 0.0, false
	for _, r := range rs {
		touches := false
		for _, a := range r.Attrs() {
			if a == attr {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		key := r.ID + "\x1f" + dataset.JoinKey(tb.Project(t, r.Attrs()))
		w, ok := weightOf[key]
		if !ok {
			continue
		}
		if !found || w > bestWeight || (w == bestWeight && r.ID < bestRule) {
			bestRule, bestWeight, found = r.ID, w, true
		}
	}
	return bestRule, bestWeight
}

// preRepairTable rebuilds the session's original streamed input — the
// pre-repair table rollback restores — from the logged batches. Tuple IDs
// are stream positions, matching the repaired table's.
func preRepairTable(schema *dataset.Schema, batches [][][]string) (*dataset.Table, error) {
	tb := dataset.NewTable(schema)
	for _, b := range batches {
		for _, row := range b {
			if _, err := tb.Append(row...); err != nil {
				return nil, fmt.Errorf("server: rebuild pre-repair table: %w", err)
			}
		}
	}
	return tb, nil
}
