package errgen

import (
	"fmt"
	"math/rand"
	"sort"

	"mlnclean/internal/dataset"
)

// DuplicateConfig controls duplicate injection — the third instance-level
// error class of §1 ("duplicates indicate that there are multiple tuples
// corresponding to the same real entity", e.g. t4–t6 of Table 1).
type DuplicateConfig struct {
	// Rate is the fraction of tuples that receive an extra duplicate copy.
	Rate float64
	// TypoRate is the probability that a duplicate copy additionally
	// carries one typo (a near-duplicate, which only becomes an exact
	// duplicate — and thus removable — after cleaning).
	TypoRate float64
	// Attrs are the attributes eligible for the near-duplicate typo
	// (defaults to every attribute).
	Attrs []string
	// Seed makes the injection deterministic.
	Seed int64
}

// DuplicateInjection records injected duplicates.
type DuplicateInjection struct {
	// Dirty is the table with duplicate rows appended (new tuple IDs).
	Dirty *dataset.Table
	// Sets lists each duplicate set: the original tuple ID first, then the
	// IDs of its injected copies.
	Sets [][]int
}

// InjectDuplicates appends duplicate copies of randomly chosen tuples. The
// input table is not modified; copies get fresh sequential IDs.
func InjectDuplicates(tb *dataset.Table, cfg DuplicateConfig) (*DuplicateInjection, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("errgen: duplicate rate %v out of [0,1]", cfg.Rate)
	}
	if cfg.TypoRate < 0 || cfg.TypoRate > 1 {
		return nil, fmt.Errorf("errgen: typo rate %v out of [0,1]", cfg.TypoRate)
	}
	attrs := cfg.Attrs
	if len(attrs) == 0 {
		attrs = tb.Schema.Attrs()
	}
	for _, a := range attrs {
		if !tb.Schema.Has(a) {
			return nil, fmt.Errorf("errgen: attribute %q not in schema", a)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := tb.Clone()
	inj := &DuplicateInjection{Dirty: out}

	want := int(cfg.Rate * float64(tb.Len()))
	if want <= 0 {
		return inj, nil
	}
	chosen := rng.Perm(tb.Len())[:want]
	sort.Ints(chosen)
	nextID := 0
	for _, t := range tb.Tuples {
		if t.ID >= nextID {
			nextID = t.ID + 1
		}
	}
	for _, pos := range chosen {
		orig := tb.Tuples[pos]
		copyT := orig.Clone()
		copyT.ID = nextID
		nextID++
		if rng.Float64() < cfg.TypoRate {
			// One near-duplicate typo on a random eligible attribute with a
			// value long enough to lose a letter.
			for attempts := 0; attempts < 8; attempts++ {
				attr := attrs[rng.Intn(len(attrs))]
				idx := out.Schema.MustIndex(attr)
				r := []rune(copyT.Values[idx])
				if len(r) < 2 {
					continue
				}
				i := rng.Intn(len(r))
				copyT.Values[idx] = string(append(append([]rune{}, r[:i]...), r[i+1:]...))
				break
			}
		}
		out.Tuples = append(out.Tuples, copyT)
		inj.Sets = append(inj.Sets, []int{orig.ID, copyT.ID})
	}
	return inj, nil
}

// DedupQuality scores a cleaner's duplicate elimination against the
// injected sets: precision = removed tuples that really were injected
// duplicates / all removed tuples; recall = injected duplicates removed /
// all injected duplicates.
type DedupQuality struct {
	Precision float64
	Recall    float64
	Removed   int
	Correct   int
	Injected  int
}

// EvalDedup compares the cleaner's removed-duplicate sets with the
// injection. got is core.Result.Duplicates-style: each set lists the kept
// representative first and then removed members; only the removed members
// (everything after the representative) are scored.
func (inj *DuplicateInjection) EvalDedup(got [][]int) DedupQuality {
	injected := make(map[int]bool)
	for _, set := range inj.Sets {
		for _, id := range set[1:] {
			injected[id] = true
		}
	}
	q := DedupQuality{Injected: len(injected)}
	for _, set := range got {
		for _, id := range set[1:] {
			q.Removed++
			if injected[id] {
				q.Correct++
			}
		}
	}
	if q.Removed > 0 {
		q.Precision = float64(q.Correct) / float64(q.Removed)
	} else if q.Injected == 0 {
		q.Precision = 1
	}
	if q.Injected > 0 {
		q.Recall = float64(q.Correct) / float64(q.Injected)
	} else {
		q.Recall = 1
	}
	return q
}
