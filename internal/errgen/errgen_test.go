package errgen

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

func smallTruth(t *testing.T) (*dataset.Table, []*rules.Rule) {
	t.Helper()
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 40, Measures: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return truth, rs
}

func TestInjectRate(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, err := Inject(truth, rs, Config{Rate: 0.10, ReplacementRatio: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Rate(); math.Abs(got-0.10) > 0.01 {
		t.Errorf("achieved rate = %.3f, want ≈ 0.10", got)
	}
	byType := inj.CountByType()
	total := byType[Typo] + byType[Replacement]
	if math.Abs(float64(byType[Replacement])/float64(total)-0.5) > 0.05 {
		t.Errorf("replacement share = %d/%d, want ≈ 50%%", byType[Replacement], total)
	}
}

func TestInjectOnlyTargetAttrs(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, err := Inject(truth, rs, Config{Rate: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	targets := make(map[string]bool)
	for _, a := range RuleAttrs(rs) {
		targets[a] = true
	}
	for _, e := range inj.Errors {
		if !targets[e.Attr] {
			t.Errorf("error injected outside rule attrs: %q", e.Attr)
		}
	}
	// Score is not rule-related; it must be untouched.
	if targets["Score"] {
		t.Fatal("test premise broken: Score should not be a rule attr")
	}
}

// TestDirtyDiffersExactlyAtErrors: the dirty table differs from the truth
// exactly at the recorded error cells, with the recorded values.
func TestDirtyDiffersExactlyAtErrors(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, err := Inject(truth, rs, Config{Rate: 0.15, ReplacementRatio: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	diffCells := make(map[Cell]bool)
	for i, tt := range truth.Tuples {
		dt := inj.Dirty.Tuples[i]
		for j := range tt.Values {
			if tt.Values[j] != dt.Values[j] {
				diffCells[Cell{tt.ID, truth.Schema.Attr(j)}] = true
			}
		}
	}
	if len(diffCells) != len(inj.Errors) {
		t.Fatalf("diff cells = %d, recorded errors = %d", len(diffCells), len(inj.Errors))
	}
	for _, e := range inj.Errors {
		if !diffCells[Cell{e.TupleID, e.Attr}] {
			t.Errorf("recorded error at unchanged cell (%d,%s)", e.TupleID, e.Attr)
		}
		if got := inj.Dirty.Cell(inj.Dirty.Tuples[e.TupleID], e.Attr); got != e.Dirty {
			t.Errorf("dirty value mismatch at (%d,%s): %q vs %q", e.TupleID, e.Attr, got, e.Dirty)
		}
		if got := truth.Cell(truth.Tuples[e.TupleID], e.Attr); got != e.Clean {
			t.Errorf("clean value mismatch at (%d,%s)", e.TupleID, e.Attr)
		}
	}
}

func TestTruthNotModified(t *testing.T) {
	truth, rs := smallTruth(t)
	before := truth.Clone()
	if _, err := Inject(truth, rs, Config{Rate: 0.3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if d := truth.Diff(before); len(d) != 0 {
		t.Errorf("Inject modified the truth table: %v", d)
	}
}

func TestTypoShape(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, err := Inject(truth, rs, Config{Rate: 0.2, ReplacementRatio: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inj.Errors {
		if e.Type != Typo {
			continue
		}
		if len([]rune(e.Dirty)) != len([]rune(e.Clean))-1 {
			t.Errorf("typo %q -> %q is not a single deletion", e.Clean, e.Dirty)
		}
	}
}

func TestReplacementShape(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, err := Inject(truth, rs, Config{Rate: 0.2, ReplacementRatio: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	domains := make(map[string]map[string]bool)
	for _, a := range RuleAttrs(rs) {
		m := make(map[string]bool)
		for _, v := range truth.Domain(a) {
			m[v] = true
		}
		domains[a] = m
	}
	for _, e := range inj.Errors {
		if e.Type != Replacement {
			continue
		}
		if e.Dirty == e.Clean {
			t.Error("replacement kept the clean value")
		}
		if !domains[e.Attr][e.Dirty] {
			t.Errorf("replacement %q not from the %s domain", e.Dirty, e.Attr)
		}
	}
}

func TestDeterminism(t *testing.T) {
	truth, rs := smallTruth(t)
	a, _ := Inject(truth, rs, Config{Rate: 0.1, ReplacementRatio: 0.5, Seed: 99})
	b, _ := Inject(truth, rs, Config{Rate: 0.1, ReplacementRatio: 0.5, Seed: 99})
	if !reflect.DeepEqual(a.Errors, b.Errors) {
		t.Error("same seed should produce identical injections")
	}
	c, _ := Inject(truth, rs, Config{Rate: 0.1, ReplacementRatio: 0.5, Seed: 100})
	if reflect.DeepEqual(a.Errors, c.Errors) {
		t.Error("different seeds should differ")
	}
}

func TestInjectValidation(t *testing.T) {
	truth, rs := smallTruth(t)
	if _, err := Inject(truth, rs, Config{Rate: -0.1}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := Inject(truth, rs, Config{Rate: 1.5}); err == nil {
		t.Error("rate > 1 should fail")
	}
	if _, err := Inject(truth, rs, Config{Rate: 0.1, ReplacementRatio: 2}); err == nil {
		t.Error("ratio > 1 should fail")
	}
	if _, err := Inject(truth, rs, Config{Rate: 0.1, Attrs: []string{"Nope"}}); err == nil {
		t.Error("unknown attr should fail")
	}
}

func TestZeroRate(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, err := Inject(truth, rs, Config{Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Errors) != 0 {
		t.Errorf("zero rate injected %d errors", len(inj.Errors))
	}
	if d := inj.Dirty.Diff(truth); len(d) != 0 {
		t.Error("zero-rate dirty differs from truth")
	}
}

func TestErrorAtAndNoisyCells(t *testing.T) {
	truth, rs := smallTruth(t)
	inj, _ := Inject(truth, rs, Config{Rate: 0.1, Seed: 3})
	cells := inj.NoisyCells()
	if len(cells) != len(inj.Errors) {
		t.Fatalf("NoisyCells = %d, errors = %d", len(cells), len(inj.Errors))
	}
	for _, c := range cells {
		e, ok := inj.ErrorAt(c.TupleID, c.Attr)
		if !ok || e == nil {
			t.Errorf("ErrorAt(%v) missing", c)
		}
		if !inj.IsError(c.TupleID, c.Attr) {
			t.Errorf("IsError(%v) = false", c)
		}
	}
	if inj.IsError(-1, "Nope") {
		t.Error("IsError on clean cell")
	}
}

func TestRuleAttrs(t *testing.T) {
	rs := rules.MustParseStrings("FD: A -> B", "FD: B -> C")
	if got := RuleAttrs(rs); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Errorf("RuleAttrs = %v", got)
	}
}

// TestRatePropertyQuick: for arbitrary rates the achieved rate tracks the
// request (within slack from uncorruptible values).
func TestRatePropertyQuick(t *testing.T) {
	truth, rs := smallTruth(t)
	f := func(r uint8) bool {
		rate := float64(r%30) / 100
		inj, err := Inject(truth, rs, Config{Rate: rate, Seed: int64(r)})
		if err != nil {
			return false
		}
		return math.Abs(inj.Rate()-rate) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if Typo.String() != "typo" || Replacement.String() != "replacement" {
		t.Error("Type.String")
	}
}
