package errgen

import (
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
)

func TestInjectDuplicatesExact(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 20; i++ {
		tb.MustAppend("key"+string(rune('a'+i)), "val")
	}
	inj, err := InjectDuplicates(tb, DuplicateConfig{Rate: 0.25, TypoRate: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Sets) != 5 {
		t.Fatalf("duplicate sets = %d, want 5", len(inj.Sets))
	}
	if inj.Dirty.Len() != 25 {
		t.Errorf("dirty len = %d, want 25", inj.Dirty.Len())
	}
	for _, set := range inj.Sets {
		orig := inj.Dirty.ByID(set[0])
		dup := inj.Dirty.ByID(set[1])
		if orig == nil || dup == nil {
			t.Fatalf("set %v references missing tuples", set)
		}
		for j := range orig.Values {
			if orig.Values[j] != dup.Values[j] {
				t.Errorf("exact duplicate differs at %d", j)
			}
		}
	}
	// Input untouched.
	if tb.Len() != 20 {
		t.Error("input table modified")
	}
}

func TestInjectDuplicatesNear(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A", "B"))
	for i := 0; i < 10; i++ {
		tb.MustAppend("longkeyvalue", "anotherlongvalue")
	}
	inj, err := InjectDuplicates(tb, DuplicateConfig{Rate: 0.5, TypoRate: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range inj.Sets {
		orig := inj.Dirty.ByID(set[0])
		dup := inj.Dirty.ByID(set[1])
		diff := 0
		for j := range orig.Values {
			if orig.Values[j] != dup.Values[j] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("near-duplicate should differ in exactly 1 cell, got %d", diff)
		}
	}
}

func TestInjectDuplicatesValidation(t *testing.T) {
	tb := dataset.NewTable(dataset.MustSchema("A"))
	tb.MustAppend("x")
	if _, err := InjectDuplicates(tb, DuplicateConfig{Rate: -1}); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := InjectDuplicates(tb, DuplicateConfig{Rate: 0.5, TypoRate: 2}); err == nil {
		t.Error("typo rate > 1 should fail")
	}
	if _, err := InjectDuplicates(tb, DuplicateConfig{Rate: 0.5, Attrs: []string{"Nope"}}); err == nil {
		t.Error("unknown attr should fail")
	}
}

// TestCleanRemovesInjectedDuplicates: end to end, MLNClean's dedup stage
// removes exact injected duplicates, and near-duplicates whose typo RSC
// repaired.
func TestCleanRemovesInjectedDuplicates(t *testing.T) {
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 30, Measures: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	// Near-duplicate typos go on rule-covered attributes: a typo on an
	// uncovered attribute (e.g. Score) is unrepairable by any rule, so the
	// copy stays a near-duplicate and exact-match dedup rightly keeps it.
	inj, err := InjectDuplicates(truth, DuplicateConfig{Rate: 0.2, TypoRate: 0.5, Seed: 43, Attrs: RuleAttrs(rs)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Clean(inj.Dirty, rs, core.Options{Tau: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := inj.EvalDedup(res.Duplicates)
	t.Logf("dedup: P=%.3f R=%.3f removed=%d injected=%d", q.Precision, q.Recall, q.Removed, q.Injected)
	if q.Recall < 0.8 {
		t.Errorf("dedup recall = %.3f, want ≥ 0.8", q.Recall)
	}
	if q.Precision < 0.9 {
		t.Errorf("dedup precision = %.3f, want ≥ 0.9", q.Precision)
	}
}

func TestEvalDedupEdgeCases(t *testing.T) {
	inj := &DuplicateInjection{}
	q := inj.EvalDedup(nil)
	if q.Precision != 1 || q.Recall != 1 {
		t.Errorf("empty case: %+v", q)
	}
	inj.Sets = [][]int{{0, 5}}
	q = inj.EvalDedup([][]int{{0, 5}, {1, 9}})
	if q.Correct != 1 || q.Removed != 2 || q.Precision != 0.5 || q.Recall != 1 {
		t.Errorf("mixed case: %+v", q)
	}
}
