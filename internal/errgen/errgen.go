// Package errgen injects synthetic errors into clean tables, reproducing
// the paper's error model (§7.1): typos (a randomly deleted letter) and
// replacement errors (a value swapped for another value of the same
// domain), applied to the attributes involved in the integrity constraints.
// The injection keeps full ground truth so evaluation can compute repair
// precision/recall and the component metrics of §7.3.
package errgen

import (
	"fmt"
	"math/rand"
	"sort"

	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// Type is the kind of an injected error.
type Type int

const (
	// Typo deletes one random letter of the value (§7.1: "we randomly
	// delete any letter of an attribute value to construct a typo").
	Typo Type = iota
	// Replacement swaps the value for a different value drawn from the same
	// attribute domain.
	Replacement
)

// String implements fmt.Stringer.
func (t Type) String() string {
	if t == Typo {
		return "typo"
	}
	return "replacement"
}

// Error records one injected error.
type Error struct {
	TupleID int
	Attr    string
	Clean   string
	Dirty   string
	Type    Type
}

// Cell addresses one attribute value of one tuple.
type Cell struct {
	TupleID int
	Attr    string
}

// Injection is the result of corrupting a clean table.
type Injection struct {
	// Truth is the clean table (the input, unmodified).
	Truth *dataset.Table
	// Dirty is the corrupted copy.
	Dirty *dataset.Table
	// Errors lists every injected error, ordered by (tuple, attr).
	Errors []Error
	// TargetAttrs are the attributes eligible for injection.
	TargetAttrs []string

	byCell map[Cell]*Error
}

// Config controls injection.
type Config struct {
	// Rate is the error rate: the fraction of eligible attribute values
	// (tuples × rule-related attributes) corrupted. The paper defines the
	// rate over attribute values and injects only on the attributes related
	// to the integrity constraints; we normalize by the eligible cells so a
	// requested 30% is achievable on every dataset.
	Rate float64
	// ReplacementRatio is Rret: the fraction of errors that are replacement
	// errors; the remainder are typos. The paper's default mix is 50/50.
	ReplacementRatio float64
	// Attrs overrides the attribute set to corrupt; by default the union of
	// all rule-related attributes is used.
	Attrs []string
	// Seed makes the injection deterministic.
	Seed int64
}

// RuleAttrs returns the sorted union of attributes referenced by the rules.
func RuleAttrs(rs []*rules.Rule) []string {
	set := make(map[string]struct{})
	for _, r := range rs {
		for _, a := range r.Attrs() {
			set[a] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Inject corrupts a copy of the clean table according to cfg. The clean
// table itself is never modified.
func Inject(truth *dataset.Table, rs []*rules.Rule, cfg Config) (*Injection, error) {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		return nil, fmt.Errorf("errgen: rate %v out of [0,1]", cfg.Rate)
	}
	if cfg.ReplacementRatio < 0 || cfg.ReplacementRatio > 1 {
		return nil, fmt.Errorf("errgen: replacement ratio %v out of [0,1]", cfg.ReplacementRatio)
	}
	attrs := cfg.Attrs
	if len(attrs) == 0 {
		attrs = RuleAttrs(rs)
	}
	for _, a := range attrs {
		if !truth.Schema.Has(a) {
			return nil, fmt.Errorf("errgen: attribute %q not in schema", a)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dirty := truth.Clone()
	inj := &Injection{
		Truth:       truth,
		Dirty:       dirty,
		TargetAttrs: attrs,
		byCell:      make(map[Cell]*Error),
	}
	if cfg.Rate == 0 || len(attrs) == 0 || truth.Len() == 0 {
		return inj, nil
	}

	// Domains for replacement errors come from the clean data.
	domains := make(map[string][]string, len(attrs))
	for _, a := range attrs {
		domains[a] = truth.Domain(a)
	}

	// Sample distinct cells without replacement.
	total := truth.Len() * len(attrs)
	want := int(cfg.Rate * float64(total))
	if want > total {
		want = total
	}
	cells := rng.Perm(total)[:want]
	sort.Ints(cells)

	nReplacement := int(cfg.ReplacementRatio * float64(want))
	// Assign error types to the sampled cells in random order.
	typeOrder := rng.Perm(want)

	for k, cellIdx := range cells {
		ti := cellIdx / len(attrs)
		attr := attrs[cellIdx%len(attrs)]
		t := dirty.Tuples[ti]
		clean := dirty.Cell(t, attr)

		wantType := Typo
		if typeOrder[k] < nReplacement {
			wantType = Replacement
		}
		dirtyVal, actual, ok := corrupt(rng, clean, domains[attr], wantType)
		if !ok {
			continue // value cannot be corrupted (e.g. empty, singleton domain)
		}
		dirty.SetCell(t, attr, dirtyVal)
		e := Error{TupleID: t.ID, Attr: attr, Clean: clean, Dirty: dirtyVal, Type: actual}
		inj.Errors = append(inj.Errors, e)
	}
	sort.Slice(inj.Errors, func(i, j int) bool {
		if inj.Errors[i].TupleID != inj.Errors[j].TupleID {
			return inj.Errors[i].TupleID < inj.Errors[j].TupleID
		}
		return inj.Errors[i].Attr < inj.Errors[j].Attr
	})
	for i := range inj.Errors {
		e := &inj.Errors[i]
		inj.byCell[Cell{e.TupleID, e.Attr}] = e
	}
	return inj, nil
}

// corrupt produces a dirty value of (preferably) the wanted type, falling
// back to the other type when the value does not admit it. Returns ok=false
// when no corruption is possible.
func corrupt(rng *rand.Rand, clean string, domain []string, want Type) (string, Type, bool) {
	tryTypo := func() (string, bool) {
		r := []rune(clean)
		if len(r) < 2 {
			return "", false // deleting would empty the value
		}
		i := rng.Intn(len(r))
		return string(append(append([]rune{}, r[:i]...), r[i+1:]...)), true
	}
	tryReplacement := func() (string, bool) {
		if len(domain) < 2 {
			return "", false
		}
		for attempts := 0; attempts < 8; attempts++ {
			v := domain[rng.Intn(len(domain))]
			if v != clean {
				return v, true
			}
		}
		return "", false
	}
	if want == Typo {
		if v, ok := tryTypo(); ok {
			return v, Typo, true
		}
		if v, ok := tryReplacement(); ok {
			return v, Replacement, true
		}
		return "", Typo, false
	}
	if v, ok := tryReplacement(); ok {
		return v, Replacement, true
	}
	if v, ok := tryTypo(); ok {
		return v, Typo, true
	}
	return "", Replacement, false
}

// ErrorAt returns the injected error at the cell, if any.
func (inj *Injection) ErrorAt(tupleID int, attr string) (*Error, bool) {
	e, ok := inj.byCell[Cell{tupleID, attr}]
	return e, ok
}

// IsError reports whether the cell was corrupted.
func (inj *Injection) IsError(tupleID int, attr string) bool {
	_, ok := inj.byCell[Cell{tupleID, attr}]
	return ok
}

// NoisyCells returns the corrupted cells — the perfect-detection oracle the
// paper hands to HoloClean (§7.2).
func (inj *Injection) NoisyCells() []Cell {
	out := make([]Cell, 0, len(inj.Errors))
	for _, e := range inj.Errors {
		out = append(out, Cell{e.TupleID, e.Attr})
	}
	return out
}

// Rate returns the achieved error rate over eligible cells.
func (inj *Injection) Rate() float64 {
	total := inj.Truth.Len() * len(inj.TargetAttrs)
	if total == 0 {
		return 0
	}
	return float64(len(inj.Errors)) / float64(total)
}

// CountByType tallies the injected errors per type.
func (inj *Injection) CountByType() map[Type]int {
	out := make(map[Type]int)
	for _, e := range inj.Errors {
		out[e.Type]++
	}
	return out
}
