package bench

import (
	"fmt"
	"testing"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distributed"
)

// BenchmarkExecutorScale measures the real concurrent executor (not the
// ideal-cluster model) over the worker-count sweep of Table 6: measured
// wall time is the benchmark metric, with the modeled cluster time attached
// as a custom metric for comparison.
func BenchmarkExecutorScale(b *testing.B) {
	ds, err := Small.Generate("tpch")
	if err != nil {
		b.Fatal(err)
	}
	inj, err := injectFor(ds, Small, 0.05, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var clusterNS float64
			for i := 0; i < b.N; i++ {
				res, err := distributed.Clean(inj.Dirty, ds.Rules, distributed.Options{
					Workers: workers,
					Seed:    Small.Seed,
					Core:    core.Options{Tau: ds.Tau},
				})
				if err != nil {
					b.Fatal(err)
				}
				clusterNS += float64(res.ClusterTime().Nanoseconds())
			}
			b.ReportMetric(clusterNS/float64(b.N), "cluster-ns/op")
		})
	}
}

// BenchmarkExecutorTransport compares the in-process channel transport with
// the gob transport, which serializes every message — the upper bound a
// same-host RPC transport would add in marshalling cost.
func BenchmarkExecutorTransport(b *testing.B) {
	ds, err := Small.Generate("tpch")
	if err != nil {
		b.Fatal(err)
	}
	inj, err := injectFor(ds, Small, 0.05, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for name, factory := range map[string]distributed.TransportFactory{
		"chan": distributed.NewChanTransport,
		"gob":  distributed.NewGobTransport,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := distributed.Clean(inj.Dirty, ds.Rules, distributed.Options{
					Workers:   4,
					Seed:      Small.Seed,
					Core:      core.Options{Tau: ds.Tau},
					Transport: factory,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecutorRecovery measures the fault-tolerance layer's cost: a
// run that loses one worker mid-stage-I (detected by heartbeat timeout,
// partition replayed onto a respawned worker) against the same run
// undisturbed. The delta is the recovery overhead — detection latency plus
// one partition's re-execution — and workers-lost/op confirms the failure
// actually fired.
func BenchmarkExecutorRecovery(b *testing.B) {
	ds, err := Small.Generate("tpch")
	if err != nil {
		b.Fatal(err)
	}
	inj, err := injectFor(ds, Small, 0.05, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for name, factory := range map[string]distributed.TransportFactory{
		"healthy": nil,
		"one-crash": distributed.NewFaultTransport(distributed.NewChanTransport, distributed.FaultPlan{
			Crashes: []distributed.Crash{{Slot: 1, AtSend: 1}},
		}),
	} {
		b.Run(name, func(b *testing.B) {
			var lost float64
			for i := 0; i < b.N; i++ {
				res, err := distributed.Clean(inj.Dirty, ds.Rules, distributed.Options{
					Workers:           4,
					Seed:              Small.Seed,
					Core:              core.Options{Tau: ds.Tau},
					Transport:         factory,
					HeartbeatInterval: 10 * time.Millisecond,
					WorkerTimeout:     100 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				lost += float64(res.WorkersLost)
			}
			b.ReportMetric(lost/float64(b.N), "workers-lost/op")
		})
	}
}

// BenchmarkExecutorSubmit measures the streaming ingest path: the table
// flows through Executor.Submit in 512-row batches.
func BenchmarkExecutorSubmit(b *testing.B) {
	ds, err := Small.Generate("tpch")
	if err != nil {
		b.Fatal(err)
	}
	inj, err := injectFor(ds, Small, 0.05, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	const batchRows = 512
	batches := make([]*dataset.Table, 0, inj.Dirty.Len()/batchRows+1)
	for lo := 0; lo < inj.Dirty.Len(); lo += batchRows {
		hi := lo + batchRows
		if hi > inj.Dirty.Len() {
			hi = inj.Dirty.Len()
		}
		batch := dataset.NewTable(inj.Dirty.Schema)
		for _, t := range inj.Dirty.Tuples[lo:hi] {
			batch.MustAppend(t.Values...)
		}
		batches = append(batches, batch)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := distributed.NewExecutor(inj.Dirty.Schema, ds.Rules, distributed.Options{
			Workers: 4,
			Seed:    Small.Seed,
			Core:    core.Options{Tau: ds.Tau},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if err := ex.Submit(batch); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := ex.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
