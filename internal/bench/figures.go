package bench

import (
	"fmt"
	"time"
)

// Fig6 reproduces Fig. 6 for one dataset ("car" or "hai"): MLNClean vs
// HoloClean F1 and runtime across error rates 5–30%.
func Fig6(sc Scale, dsName string) (*Report, error) {
	ds, err := sc.Generate(dsName)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    "fig6-" + dsName,
		Title:   fmt.Sprintf("Fig. 6: F1 and runtime vs error rate (%s, %d tuples)", dsName, ds.Truth.Len()),
		Columns: []string{"error%", "MLNClean F1", "HoloClean F1", "MLNClean time", "HoloClean time"},
	}
	for _, rate := range ErrorSweep {
		mc, err := RunMLNClean(ds, sc, rate, 0.5, -1, nil)
		if err != nil {
			return nil, err
		}
		hc, err := RunHoloClean(ds, sc, rate, 0.5)
		if err != nil {
			return nil, err
		}
		r.AddRow(pct(rate), f3(mc.Quality.F1), f3(hc.Quality.F1),
			mc.Duration.Round(time.Millisecond).String(),
			hc.Duration.Round(time.Millisecond).String())
	}
	r.Notes = append(r.Notes,
		"paper shape: MLNClean F1 above HoloClean at every rate; both decline mildly; MLNClean faster",
		"MLNClean time covers detection+repair; HoloClean time covers repair only (its detection is the oracle), as in §7.2")
	return r, nil
}

// Fig7 reproduces Fig. 7 for one dataset: F1 vs the replacement-error ratio
// Rret at a fixed 5% total error rate.
func Fig7(sc Scale, dsName string) (*Report, error) {
	ds, err := sc.Generate(dsName)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    "fig7-" + dsName,
		Title:   fmt.Sprintf("Fig. 7: F1 vs replacement-error ratio Rret (%s, 5%% errors)", dsName),
		Columns: []string{"Rret", "MLNClean F1", "HoloClean F1"},
	}
	for _, rret := range RretSweep {
		mc, err := RunMLNClean(ds, sc, 0.05, rret, -1, nil)
		if err != nil {
			return nil, err
		}
		hc, err := RunHoloClean(ds, sc, 0.05, rret)
		if err != nil {
			return nil, err
		}
		r.AddRow(pct(rret), f3(mc.Quality.F1), f3(hc.Quality.F1))
	}
	r.Notes = append(r.Notes,
		"paper shape: MLNClean flat in Rret; HoloClean rises with Rret on sparse CAR (all-typos worst), flatter on dense HAI")
	return r, nil
}

// tauSweep returns the τ axis for a dataset at this scale: the paper sweeps
// 0–5 on CAR and 0–50 on HAI; group sizes scale with the dataset, so the
// sweep tops out around 4–5× the tuned τ.
func tauSweep(ds *Dataset) []int {
	max := ds.Tau * 5
	if max < 5 {
		max = 5
	}
	var out []int
	step := max / 5
	if step < 1 {
		step = 1
	}
	for t := 0; t <= max; t += step {
		out = append(out, t)
	}
	return out
}

// Fig8 reproduces Fig. 8: AGP precision/recall and #dag vs τ.
func Fig8(sc Scale, dsName string) (*Report, error) {
	return tauComponentReport(sc, dsName, "fig8", "AGP accuracy vs threshold τ",
		[]string{"tau", "Precision-A", "Recall-A", "#dag"},
		func(res RunResult) []string {
			return []string{f3(res.AGP.Precision), f3(res.AGP.Recall), fmt.Sprint(res.AGP.DetectedPieces)}
		},
		"paper shape: accuracy peaks at an intermediate τ (τ=0 detects nothing), #dag grows with τ, collapse at large τ")
}

// Fig9 reproduces Fig. 9: RSC precision/recall vs τ.
func Fig9(sc Scale, dsName string) (*Report, error) {
	return tauComponentReport(sc, dsName, "fig9", "RSC accuracy vs threshold τ",
		[]string{"tau", "Precision-R", "Recall-R"},
		func(res RunResult) []string {
			return []string{f3(res.RSC.Precision), f3(res.RSC.Recall)}
		},
		"paper shape: peak at the tuned τ, deteriorating on both sides; precision ≥ recall")
}

// Fig10 reproduces Fig. 10: FSCR precision/recall vs τ.
func Fig10(sc Scale, dsName string) (*Report, error) {
	return tauComponentReport(sc, dsName, "fig10", "FSCR accuracy vs threshold τ",
		[]string{"tau", "Precision-F", "Recall-F"},
		func(res RunResult) []string {
			return []string{f3(res.FSCR.Precision), f3(res.FSCR.Recall)}
		},
		"paper shape: precision stays high across τ; recall collapses once τ passes the optimum")
}

// Fig11 reproduces Fig. 11: overall MLNClean F1 and runtime vs τ.
func Fig11(sc Scale, dsName string) (*Report, error) {
	return tauComponentReport(sc, dsName, "fig11", "MLNClean F1 and runtime vs threshold τ",
		[]string{"tau", "F1", "time"},
		func(res RunResult) []string {
			return []string{f3(res.Quality.F1), res.Duration.Round(time.Millisecond).String()}
		},
		"paper shape: F1 peaks at the tuned τ; runtime grows with τ (more detected abnormal groups)")
}

func tauComponentReport(sc Scale, dsName, figName, title string, cols []string,
	row func(RunResult) []string, note string) (*Report, error) {
	ds, err := sc.Generate(dsName)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    figName + "-" + dsName,
		Title:   fmt.Sprintf("%s: %s (%s, 5%% errors)", figLabel(figName), title, dsName),
		Columns: cols,
	}
	for _, tau := range tauSweep(ds) {
		res, err := RunMLNClean(ds, sc, 0.05, 0.5, tau, nil)
		if err != nil {
			return nil, err
		}
		r.AddRow(append([]string{fmt.Sprint(tau)}, row(res)...)...)
	}
	r.Notes = append(r.Notes, note,
		fmt.Sprintf("tuned τ at this scale is %d (the paper's τ=1 on CAR / τ=10 on HAI correspond to its larger group sizes)", ds.Tau))
	return r, nil
}

func figLabel(name string) string {
	switch name {
	case "fig8":
		return "Fig. 8"
	case "fig9":
		return "Fig. 9"
	case "fig10":
		return "Fig. 10"
	case "fig11":
		return "Fig. 11"
	}
	return name
}

// Fig12 reproduces Fig. 12: AGP accuracy and #dag vs error rate.
func Fig12(sc Scale, dsName string) (*Report, error) {
	return errComponentReport(sc, dsName, "fig12", "AGP accuracy vs error rate",
		[]string{"error%", "Precision-A", "Recall-A", "#dag"},
		func(res RunResult) []string {
			return []string{f3(res.AGP.Precision), f3(res.AGP.Recall), fmt.Sprint(res.AGP.DetectedPieces)}
		},
		"paper shape: both precision and recall decay as the error rate grows; #dag grows")
}

// Fig13 reproduces Fig. 13: RSC accuracy vs error rate.
func Fig13(sc Scale, dsName string) (*Report, error) {
	return errComponentReport(sc, dsName, "fig13", "RSC accuracy vs error rate",
		[]string{"error%", "Precision-R", "Recall-R"},
		func(res RunResult) []string {
			return []string{f3(res.RSC.Precision), f3(res.RSC.Recall)}
		},
		"paper shape: mild decay (precision −≈10%, recall −≈1% over the sweep); RSC is robust")
}

// Fig14 reproduces Fig. 14: FSCR accuracy vs error rate.
func Fig14(sc Scale, dsName string) (*Report, error) {
	return errComponentReport(sc, dsName, "fig14", "FSCR accuracy vs error rate",
		[]string{"error%", "Precision-F", "Recall-F"},
		func(res RunResult) []string {
			return []string{f3(res.FSCR.Precision), f3(res.FSCR.Recall)}
		},
		"paper shape: no significant fluctuation; FSCR cleans what AGP/RSC missed")
}

func errComponentReport(sc Scale, dsName, figName, title string, cols []string,
	row func(RunResult) []string, note string) (*Report, error) {
	ds, err := sc.Generate(dsName)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    figName + "-" + dsName,
		Title:   fmt.Sprintf("%s: %s (%s)", figLabel2(figName), title, dsName),
		Columns: cols,
	}
	for _, rate := range ErrorSweep {
		res, err := RunMLNClean(ds, sc, rate, 0.5, -1, nil)
		if err != nil {
			return nil, err
		}
		r.AddRow(append([]string{pct(rate)}, row(res)...)...)
	}
	r.Notes = append(r.Notes, note)
	return r, nil
}

func figLabel2(name string) string {
	switch name {
	case "fig12":
		return "Fig. 12"
	case "fig13":
		return "Fig. 13"
	case "fig14":
		return "Fig. 14"
	}
	return name
}

// Fig15 reproduces Fig. 15: distributed MLNClean F1 and modeled cluster
// time vs error rate, on HAI or TPC-H.
func Fig15(sc Scale, dsName string) (*Report, error) {
	ds, err := sc.Generate(dsName)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    "fig15-" + dsName,
		Title:   fmt.Sprintf("Fig. 15: distributed MLNClean vs error rate (%s, %d workers)", dsName, sc.Workers),
		Columns: []string{"error%", "F1", "cluster time"},
	}
	for _, rate := range ErrorSweep {
		res, err := RunDistributed(ds, sc, rate, sc.Workers)
		if err != nil {
			return nil, err
		}
		r.AddRow(pct(rate), f3(res.Quality.F1), res.Duration.Round(time.Millisecond).String())
	}
	r.Notes = append(r.Notes,
		"paper shape: F1 stays high with <3% drop across the sweep; runtime grows with error rate",
		"cluster time = partition + max(worker) + gather (ideal-cluster model; see DESIGN.md)")
	return r, nil
}
