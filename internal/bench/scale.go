package bench

import (
	"fmt"

	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/rules"
)

// Scale sizes the synthetic datasets an experiment runs on. The paper's
// datasets are 30k–6M tuples; the default scale keeps the full suite
// runnable in minutes on a laptop while preserving every qualitative
// relationship (group sizes scale with the dataset, so the AGP threshold τ
// scales too — see EXPERIMENTS.md).
type Scale struct {
	Label string

	HAIProviders int
	HAIMeasures  int
	HAITau       int

	CARRows int
	CARTau  int

	TPCHCustomers int
	TPCHRows      int
	TPCHTau       int

	// Workers is the worker count for the distributed experiments.
	Workers int
	Seed    int64
}

// Small is the CI scale: the full suite in seconds.
var Small = Scale{
	Label:        "small",
	HAIProviders: 100, HAIMeasures: 8, HAITau: 2,
	CARRows: 1500, CARTau: 1,
	TPCHCustomers: 150, TPCHRows: 2000, TPCHTau: 2,
	Workers: 4,
	Seed:    42,
}

// Default is the standard benchmarking scale.
var Default = Scale{
	Label:        "default",
	HAIProviders: 300, HAIMeasures: 14, HAITau: 3,
	CARRows: 5000, CARTau: 1,
	TPCHCustomers: 400, TPCHRows: 8000, TPCHTau: 3,
	Workers: 4,
	Seed:    42,
}

// Large approaches the paper's row counts for HAI/CAR (TPC-H remains
// scaled; 6M tuples of pure-Go weight learning is an overnight run).
var Large = Scale{
	Label:        "large",
	HAIProviders: 1500, HAIMeasures: 20, HAITau: 5,
	CARRows: 30000, CARTau: 2,
	TPCHCustomers: 2000, TPCHRows: 50000, TPCHTau: 4,
	Workers: 10,
	Seed:    42,
}

// ScaleByName resolves a scale label.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "", "default":
		return Default, nil
	case "small":
		return Small, nil
	case "large":
		return Large, nil
	default:
		return Scale{}, fmt.Errorf("bench: unknown scale %q (small|default|large)", name)
	}
}

// Dataset bundles one generated benchmark dataset.
type Dataset struct {
	Name  string
	Truth *dataset.Table
	Rules []*rules.Rule
	// Tau is the dataset's tuned AGP threshold at this scale (the paper
	// tunes τ per dataset, §7.3.1).
	Tau int
}

// Generate builds the named dataset ("hai", "car", "tpch") at this scale.
func (sc Scale) Generate(name string) (*Dataset, error) {
	switch name {
	case "hai":
		tb, rs, err := datagen.HAI(datagen.HAIConfig{Providers: sc.HAIProviders, Measures: sc.HAIMeasures, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		return &Dataset{Name: "hai", Truth: tb, Rules: rs, Tau: sc.HAITau}, nil
	case "car":
		tb, rs, err := datagen.CAR(datagen.CARConfig{Rows: sc.CARRows, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		return &Dataset{Name: "car", Truth: tb, Rules: rs, Tau: sc.CARTau}, nil
	case "tpch":
		tb, rs, err := datagen.TPCH(datagen.TPCHConfig{Customers: sc.TPCHCustomers, Rows: sc.TPCHRows, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		return &Dataset{Name: "tpch", Truth: tb, Rules: rs, Tau: sc.TPCHTau}, nil
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q (hai|car|tpch)", name)
	}
}
