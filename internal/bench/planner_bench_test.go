package bench

// Planner benchmarks: the cost of planning itself (it must be negligible —
// the whole point of reusing the encode-time dictionary counters is that no
// stats-collection pass runs) and the planned-vs-fixed stage-I comparison
// that justifies the planner's existence. Run with
//
//	go test -run '^$' -bench Planner -benchmem ./internal/bench
//
// The comparison uses the car dataset: its multi-attribute FDs (Model,
// Type -> Make) and constant CFD (Make=acura, ...) are the shapes the
// planner rewrites; hai's single-attribute FDs are deliberate no-ops.

import (
	"context"
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/intern"
	"mlnclean/internal/plan"
)

// BenchmarkPlannerPlan measures plan construction alone on an
// already-encoded dictionary — the marginal cost a planned build adds.
func BenchmarkPlannerPlan(b *testing.B) {
	for _, name := range []string{"hai", "car"} {
		b.Run(name, func(b *testing.B) {
			dirty, rs, _ := pipelineInput(b, name)
			d := intern.NewDict()
			dataset.Encode(dirty, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if p := plan.New(rs, dirty.Schema, d); len(p.Rules) != len(rs) {
					b.Fatal("bad plan")
				}
			}
		})
	}
}

// BenchmarkPlannerStageI is the planned-vs-fixed comparison: index build
// plus AGP (the phases whose scan order the planner controls) with the
// selectivity planner on and off. The planned/car ÷ fixed/car ratio is the
// win the plan dump claims.
func BenchmarkPlannerStageI(b *testing.B) {
	for _, mode := range []struct {
		name  string
		fixed bool
	}{{"planned", false}, {"fixed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, name := range []string{"hai", "car"} {
				b.Run(name, func(b *testing.B) {
					dirty, rs, tau := pipelineInput(b, name)
					opts := benchOpts(tau)
					opts.DisablePlanner = mode.fixed
					ctx := context.Background()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						ix, err := index.BuildConfigured(dirty, rs, index.BuildConfig{FixedOrder: mode.fixed})
						if err != nil {
							b.Fatal(err)
						}
						var st core.Stats
						if err := core.StageAGP(ctx, ix, opts, &st); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(dirty.Len())*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
				})
			}
		})
	}
}
