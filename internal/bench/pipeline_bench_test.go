package bench

// Pipeline micro-benchmarks for the stage-I/II hot path: index construction,
// AGP, FSCR, and the end-to-end stand-alone clean, plus the distance
// primitives they lean on. These are the before/after benchmarks of the
// dictionary-encoding refactor — run with
//
//	go test -run '^$' -bench Pipeline -benchmem ./internal/bench
//
// and compare against the numbers recorded in README.md §Performance.

import (
	"context"
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/distance"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// pipelineInput generates a default-scale dirty dataset for benchmarks.
func pipelineInput(b *testing.B, name string) (*dataset.Table, []*rules.Rule, int) {
	b.Helper()
	ds, err := Default.Generate(name)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := injectFor(ds, Default, 0.15, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return inj.Dirty, ds.Rules, ds.Tau
}

func benchOpts(tau int) core.Options {
	return core.Options{Tau: tau, TauSet: true}
}

func BenchmarkPipelineIndexBuild(b *testing.B) {
	for _, name := range []string{"hai", "car"} {
		b.Run(name, func(b *testing.B) {
			dirty, rs, _ := pipelineInput(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := index.Build(dirty, rs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(dirty.Len())*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

func BenchmarkPipelineStageAGP(b *testing.B) {
	for _, name := range []string{"hai", "car"} {
		b.Run(name, func(b *testing.B) {
			dirty, rs, tau := pipelineInput(b, name)
			opts := benchOpts(tau)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ix, err := index.Build(dirty, rs) // AGP mutates the index
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var st core.Stats
				if err := core.StageAGP(ctx, ix, opts, &st); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineRunFSCR(b *testing.B) {
	for _, name := range []string{"hai", "car"} {
		b.Run(name, func(b *testing.B) {
			dirty, rs, tau := pipelineInput(b, name)
			opts := benchOpts(tau)
			ctx := context.Background()
			ix, err := index.Build(dirty, rs)
			if err != nil {
				b.Fatal(err)
			}
			var st core.Stats
			if err := core.StageAGP(ctx, ix, opts, &st); err != nil {
				b.Fatal(err)
			}
			if err := core.StageLearn(ctx, ix, opts, &st); err != nil {
				b.Fatal(err)
			}
			if err := core.StageRSC(ctx, ix, opts, &st); err != nil {
				b.Fatal(err)
			}
			blocks := core.FusionBlocksFromIndex(ix)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunFSCR(dirty, blocks, opts, nil)
			}
			b.ReportMetric(float64(dirty.Len())*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

func BenchmarkPipelineCleanE2E(b *testing.B) {
	for _, name := range []string{"hai", "car"} {
		b.Run(name, func(b *testing.B) {
			dirty, rs, tau := pipelineInput(b, name)
			opts := benchOpts(tau)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Clean(dirty, rs, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(dirty.Len())*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkPipelineDistance exercises the γ-to-γ distance primitive exactly
// the way AGP's nearest-normal-group scan calls it: bounded, attribute-wise,
// over short mixed-case values.
func BenchmarkPipelineDistance(b *testing.B) {
	pairs := [][2][]string{
		{{"MEDICAL CENTER", "BIRMINGHAM", "AL"}, {"MEDICAL CENTRE", "BIRMINGHAM", "AL"}},
		{{"st vincents east", "b'ham", "AL"}, {"callahan eye foundation", "birmingham", "AL"}},
		{{"2567688400", "BOAZ"}, {"2567638410", "DOTHAN"}},
		{{"härnösand", "köln", "münchen"}, {"harnosand", "koln", "munchen"}},
	}
	for _, tc := range []struct {
		name   string
		metric distance.Metric
	}{{"levenshtein", distance.Levenshtein{}}, {"cosine", distance.Cosine{}}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				distance.ValuesBounded(tc.metric, p[0], p[1], 6)
			}
		})
	}
}
