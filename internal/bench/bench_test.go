package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every figure and table of §7 must be present.
	want := []string{
		"fig6-car", "fig6-hai", "fig7-car", "fig7-hai",
		"fig8-car", "fig8-hai", "fig9-car", "fig9-hai",
		"fig10-car", "fig10-hai", "fig11-car", "fig11-hai",
		"fig12-car", "fig12-hai", "fig13-car", "fig13-hai",
		"fig14-car", "fig14-hai", "fig15-hai", "fig15-tpch",
		"table5", "table6",
		"ablation-minimality", "ablation-mergecap", "ablation-weightmerge",
		"ablation-agp", "ablation-planner",
		"stream-memory",
		"incremental",
	}
	for _, name := range want {
		if _, ok := Registry[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Small); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"", "small", "default", "large"} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestGenerateDatasets(t *testing.T) {
	for _, name := range []string{"hai", "car", "tpch"} {
		ds, err := Small.Generate(name)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if ds.Truth.Len() == 0 || len(ds.Rules) == 0 || ds.Tau < 1 {
			t.Errorf("%s dataset incomplete: %d tuples, %d rules, tau %d", name, ds.Truth.Len(), len(ds.Rules), ds.Tau)
		}
	}
	if _, err := Small.Generate("nope"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Name: "x", Title: "t", Columns: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Notes = append(r.Notes, "a note")
	s := r.String()
	for _, want := range []string{"x — t", "a", "bb", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// parseF extracts a float cell.
func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestFig6ShapeCAR asserts the paper's headline claim at small scale:
// MLNClean's F1 dominates HoloClean's at every error rate (Fig. 6a).
func TestFig6ShapeCAR(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	r, err := Fig6(Small, "car")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(ErrorSweep) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		mc, hc := parseF(t, row[1]), parseF(t, row[2])
		if mc <= hc {
			t.Errorf("at %s: MLNClean %.3f ≤ HoloClean %.3f", row[0], mc, hc)
		}
	}
	// Accuracy declines as errors grow (mildly): first point ≥ last point.
	if first, last := parseF(t, r.Rows[0][1]), parseF(t, r.Rows[len(r.Rows)-1][1]); first < last {
		t.Errorf("F1 should not improve with more errors: %.3f → %.3f", first, last)
	}
}

// TestFig7ShapeCAR asserts Fig. 7(a)'s direction: the baseline's worst
// point is all-typos; MLNClean dominates everywhere.
func TestFig7ShapeCAR(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	r, err := Fig7(Small, "car")
	if err != nil {
		t.Fatal(err)
	}
	firstHC := parseF(t, r.Rows[0][2])
	lastHC := parseF(t, r.Rows[len(r.Rows)-1][2])
	if firstHC > lastHC {
		t.Errorf("HoloClean should do worse on all-typos (%.3f) than all-replacements (%.3f)", firstHC, lastHC)
	}
	for _, row := range r.Rows {
		if parseF(t, row[1]) <= parseF(t, row[2]) {
			t.Errorf("MLNClean not dominant at Rret=%s", row[0])
		}
	}
}

// TestFig8ShapeHAI asserts the τ study's endpoints: τ=0 detects nothing
// (#dag = 0) and the tuned τ beats both extremes on precision.
func TestFig8ShapeHAI(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	r, err := Fig8(Small, "hai")
	if err != nil {
		t.Fatal(err)
	}
	if dag := r.Rows[0][3]; dag != "0" {
		t.Errorf("τ=0 #dag = %s, want 0", dag)
	}
	// #dag grows with τ.
	prev := -1
	for _, row := range r.Rows {
		dag, _ := strconv.Atoi(row[3])
		if dag < prev {
			t.Errorf("#dag not monotone: %d after %d", dag, prev)
		}
		prev = dag
	}
}

// TestTable5Shape asserts Levenshtein ≥ cosine on both datasets, with the
// bigger gap on CAR (Table 5).
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	r, err := Table5(Small)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		lev, cos := parseF(t, row[1]), parseF(t, row[2])
		if lev < cos {
			t.Errorf("%s: cosine (%.3f) beat Levenshtein (%.3f)", row[0], cos, lev)
		}
		t.Logf("%s: Levenshtein %.3f vs cosine %.3f", row[0], lev, cos)
	}
	// The paper's CAR gap (0.24) needs full-scale string diversity; at the
	// small CI scale we only assert the ordering.
}

// TestAblationMinimalityShape: the minimality/observation prior must not
// hurt, and should help on at least one dataset.
func TestAblationMinimalityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	r, err := AblationMinimality(Small)
	if err != nil {
		t.Fatal(err)
	}
	helped := false
	for _, row := range r.Rows {
		with, without := parseF(t, row[1]), parseF(t, row[2])
		if with+0.02 < without {
			t.Errorf("%s: prior hurt F1: %.3f vs %.3f", row[0], with, without)
		}
		if with > without+0.02 {
			helped = true
		}
	}
	if !helped {
		t.Error("prior helped nowhere — ablation uninformative")
	}
}
