package bench

import (
	"fmt"
	"sort"
)

// Experiment is a named, runnable paper experiment.
type Experiment struct {
	Name        string
	Description string
	Run         func(Scale) (*Report, error)
}

// Registry maps experiment names (the -exp flag of cmd/benchrunner) to
// their runners. Every table and figure of §7 is present.
var Registry = buildRegistry()

func buildRegistry() map[string]Experiment {
	reg := make(map[string]Experiment)
	add := func(name, desc string, run func(Scale) (*Report, error)) {
		reg[name] = Experiment{Name: name, Description: desc, Run: run}
	}
	perDataset := func(fig string, datasets []string, desc string,
		run func(Scale, string) (*Report, error)) {
		for _, ds := range datasets {
			ds := ds
			add(fig+"-"+ds, fmt.Sprintf("%s (%s)", desc, ds), func(sc Scale) (*Report, error) {
				return run(sc, ds)
			})
		}
	}
	carHai := []string{"car", "hai"}
	perDataset("fig6", carHai, "F1 + runtime vs error rate, MLNClean vs HoloClean", Fig6)
	perDataset("fig7", carHai, "F1 vs replacement-error ratio Rret", Fig7)
	perDataset("fig8", carHai, "AGP accuracy + #dag vs τ", Fig8)
	perDataset("fig9", carHai, "RSC accuracy vs τ", Fig9)
	perDataset("fig10", carHai, "FSCR accuracy vs τ", Fig10)
	perDataset("fig11", carHai, "MLNClean F1 + runtime vs τ", Fig11)
	perDataset("fig12", carHai, "AGP accuracy + #dag vs error rate", Fig12)
	perDataset("fig13", carHai, "RSC accuracy vs error rate", Fig13)
	perDataset("fig14", carHai, "FSCR accuracy vs error rate", Fig14)
	perDataset("fig15", []string{"hai", "tpch"}, "distributed F1 + cluster time vs error rate", Fig15)
	add("table5", "F1 under Levenshtein vs cosine distance", Table5)
	add("table6", "distributed runtime vs worker count (TPC-H)", Table6)
	add("ablation-minimality", "FSCR minimality/observation prior on vs off", AblationMinimality)
	add("ablation-mergecap", "AGP merge-distance cap vs unconditional merge", AblationMergeCap)
	add("ablation-weightmerge", "Eq. 6 weight merge on vs off (distributed)", AblationWeightMerge)
	add("ablation-agp", "AGP merge-target strategy: nearest vs support-biased", AblationAGPStrategy)
	add("ablation-planner", "selectivity-driven rule planner on vs off (stage I)", AblationPlanner)
	add("stream-memory", "streaming vs materialized peak heap across table growth", StreamMemory)
	add("incremental", "incremental delta re-clean vs full re-clean (CAR)", Incremental)
	return reg
}

// Names returns the registry keys in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by name.
func Run(name string, sc Scale) (*Report, error) {
	exp, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q; available: %v", name, Names())
	}
	return exp.Run(sc)
}
