package bench

import (
	"fmt"
	"time"

	"mlnclean/internal/distance"
)

// Table5 reproduces Table 5: MLNClean F1 under Levenshtein vs cosine
// distance on CAR and HAI (5% errors).
func Table5(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "table5",
		Title:   "Table 5: F1-scores under different distance metrics (5% errors)",
		Columns: []string{"dataset", "Levenshtein", "Cosine"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		lev, err := RunMLNClean(ds, sc, 0.05, 0.5, -1, distance.Levenshtein{})
		if err != nil {
			return nil, err
		}
		cos, err := RunMLNClean(ds, sc, 0.05, 0.5, -1, distance.Cosine{})
		if err != nil {
			return nil, err
		}
		r.AddRow(dsName, f3(lev.Quality.F1), f3(cos.Quality.F1))
	}
	r.Notes = append(r.Notes,
		"paper: Levenshtein 0.968/0.970 vs cosine 0.730/0.947 on CAR/HAI — Levenshtein wins, much larger gap on CAR")
	return r, nil
}

// Table6 reproduces Table 6: distributed runtime vs worker count on TPC-H
// (5% errors), reporting the speedup relative to 2 workers as the paper
// does ("about 6.7 times speedup" from 2 to 10).
func Table6(sc Scale) (*Report, error) {
	ds, err := sc.Generate("tpch")
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    "table6",
		Title:   fmt.Sprintf("Table 6: distributed MLNClean vs number of workers (TPC-H, %d tuples, 5%% errors)", ds.Truth.Len()),
		Columns: []string{"workers", "cluster time", "F1", "speedup vs 2"},
	}
	var base time.Duration
	for _, workers := range []int{2, 4, 6, 8, 10} {
		res, err := RunDistributed(ds, sc, 0.05, workers)
		if err != nil {
			return nil, err
		}
		if workers == 2 {
			base = res.Duration
		}
		speedup := "1.00x"
		if base > 0 && res.Duration > 0 && workers != 2 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(res.Duration))
		}
		r.AddRow(fmt.Sprint(workers), res.Duration.Round(time.Millisecond).String(), f3(res.Quality.F1), speedup)
	}
	r.Notes = append(r.Notes,
		"paper: 50,759s → 7,578s from 2 → 10 workers (≈6.7×) on 6M tuples; shape expectation is near-linear decay with slight accuracy fluctuation")
	return r, nil
}
