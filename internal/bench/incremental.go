package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"time"

	"mlnclean/internal/core"
)

// Incremental measures delta re-cleaning against the only alternative an
// online deployment has: re-running the full pipeline after every change.
// A warm DeltaCleaner (weights learned, blocks cached) absorbs batches of
// 1/10/100 single-column updates; after each batch the mutated table is
// also cleaned from scratch, and the two results are required to agree
// (the bench doubles as a coarse parity check). The speedup column is the
// headline: how much cheaper an acknowledged mutation is than a re-clean.
func Incremental(sc Scale) (*Report, error) {
	r := &Report{
		Name:  "incremental",
		Title: "Incremental delta re-clean vs full re-clean (CAR)",
		Columns: []string{"delta tuples", "full ms", "delta ms", "speedup",
			"dirty blocks", "reused blocks", "refused tuples", "reused tuples"},
	}
	ds, err := sc.Generate("car")
	if err != nil {
		return nil, err
	}
	inj, err := injectFor(ds, sc, 0.05, 0.5)
	if err != nil {
		return nil, err
	}
	dirty := inj.Dirty
	opts := core.Options{Tau: ds.Tau}

	eng, err := core.NewDeltaCleaner(dirty.Schema, ds.Rules, opts)
	if err != nil {
		return nil, err
	}
	if _, err := eng.Load(dirty); err != nil {
		return nil, err
	}

	col, ok := dirty.Schema.Index("Model")
	if !ok {
		return nil, fmt.Errorf("bench: incremental: CAR schema has no Model attribute")
	}
	// The update pool: every Model value seen in the dirty table, so the
	// mutations stay inside the learned domain.
	var models []string
	seen := map[string]bool{}
	for _, t := range dirty.Tuples {
		if v := t.Values[col]; !seen[v] {
			seen[v] = true
			models = append(models, v)
		}
	}
	rng := rand.New(rand.NewSource(sc.Seed*7919 + 17))
	genMuts := func(n int) []core.Mutation {
		tb := eng.Table()
		muts := make([]core.Mutation, 0, n)
		used := map[int]bool{}
		for len(muts) < n {
			pos := rng.Intn(len(tb.Tuples))
			row := tb.Tuples[pos].ID
			if used[row] {
				continue
			}
			used[row] = true
			vals := append([]string(nil), tb.Tuples[pos].Values...)
			vals[col] = models[rng.Intn(len(models))]
			muts = append(muts, core.Mutation{Op: core.DeltaPut, Row: row, Values: vals})
		}
		return muts
	}

	// One untimed mutation warms the engine's allocation paths, so the
	// measured applies reflect steady-state serving, not the first-call GC.
	if _, _, err := eng.Apply(genMuts(1)); err != nil {
		return nil, err
	}

	const reps = 5
	for _, n := range []int{1, 10, 100} {
		if n > eng.Len() {
			r.Notes = append(r.Notes, fmt.Sprintf("skipped delta size %d: table has only %d tuples", n, eng.Len()))
			continue
		}
		var deltaTotal float64
		var dres *core.Result
		var dstats *core.DeltaStats
		for rep := 0; rep < reps; rep++ {
			muts := genMuts(n)
			runtime.GC() // isolate each timing from the previous run's garbage
			t0 := time.Now()
			res, st, err := eng.Apply(muts)
			if err != nil {
				return nil, err
			}
			deltaTotal += float64(time.Since(t0).Microseconds()) / 1000
			dres, dstats = res, st
		}
		deltaMS := deltaTotal / reps

		runtime.GC()
		t0 := time.Now()
		fres, err := core.Clean(eng.Table(), ds.Rules, opts)
		if err != nil {
			return nil, err
		}
		fullMS := float64(time.Since(t0).Microseconds()) / 1000

		if !reflect.DeepEqual(dres.Stats, fres.Stats) {
			return nil, fmt.Errorf("bench: incremental: delta size %d diverged from full re-clean", n)
		}
		speedup := 0.0
		if deltaMS > 0 {
			speedup = fullMS / deltaMS
		}
		r.AddRow(fmt.Sprintf("%d", n), f3(fullMS), f3(deltaMS),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%d", dstats.DirtyBlocks), fmt.Sprintf("%d", dstats.ReusedBlocks),
			fmt.Sprintf("%d", dstats.RefusedTuples), fmt.Sprintf("%d", dstats.ReusedTuples))
	}
	r.Notes = append(r.Notes,
		"each delta batch mutates the Model column only; blocks keyed on other attributes serve cached stage-I state",
		fmt.Sprintf("delta ms is the mean of %d applies per size; every size asserts Stats parity between the delta result and a from-scratch clean of the mutated table", reps))
	return r, nil
}
