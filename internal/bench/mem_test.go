package bench

import (
	"runtime/debug"
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
)

// TestMeasureMem sanity-checks the sampler: a run that allocates and retains
// a known chunk must report a peak at least that high and a total-alloc delta
// covering it; the error must pass through.
func TestMeasureMem(t *testing.T) {
	const chunk = 32 << 20
	var hold []byte
	mp, err := MeasureMem(func() error {
		hold = make([]byte, chunk)
		for i := 0; i < len(hold); i += 4096 {
			hold[i] = 1
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if hold[0] != 1 {
		t.Fatal("retained buffer lost")
	}
	if mp.PeakHeapBytes < chunk {
		t.Errorf("peak %d below the %d retained bytes", mp.PeakHeapBytes, chunk)
	}
	if mp.TotalAllocBytes < chunk {
		t.Errorf("total alloc %d below the %d allocated bytes", mp.TotalAllocBytes, chunk)
	}
}

// TestBoundedMemoryStreaming is the PR's bounded-memory acceptance check: the
// streaming pipeline cleans a CAR table at 10× the default benchmark scale
// under a soft memory limit, and its peak heap stays flat-per-row or better
// across the growth — a 10× table must not cost more than 10× the high-water.
//
// A strictly sublinear absolute peak is not on the table here: the dirty
// input and the repaired/clean outputs are resident tables, so the peak has
// a linear floor by construction. What streaming bounds is everything above
// that floor (raw ingest buffers, the materialized all-blocks index), and
// what this test pins is that the bound holds — nothing in the pipeline
// (memo tables, piece states, posting retention) grows superlinearly. GOGC
// is lowered during the measurement so the sampled high-water tracks the
// live set instead of the collector's overshoot, which otherwise scales
// with heap size and drowns the comparison.
func TestBoundedMemoryStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("10× default-scale clean; skipped in -short")
	}
	// A soft limit well above the expected peak: the run must complete under
	// GC pressure, not get killed — Go memory limits are not hard caps.
	oldLimit := debug.SetMemoryLimit(512 << 20)
	defer debug.SetMemoryLimit(oldLimit)
	oldGC := debug.SetGCPercent(20)
	defer debug.SetGCPercent(oldGC)

	sc := Default
	peak := func(rows int) uint64 {
		truth, rs, err := datagen.CAR(datagen.CARConfig{Rows: rows, Seed: sc.Seed})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: sc.Seed})
		if err != nil {
			t.Fatal(err)
		}
		// Keep only what the pipeline needs: the truth table and the error
		// list are bookkeeping, and holding them would pad the linear floor
		// in the pipeline's favor.
		dirty := inj.Dirty
		truth, inj = nil, nil
		_ = truth
		// Max over repeated runs: the 2ms sampler undersamples short runs, so
		// a single measurement biases the small table's peak low and the
		// growth ratio high.
		var best uint64
		for rep := 0; rep < 3; rep++ {
			mp, err := MeasureMem(func() error {
				res, err := core.Clean(dirty, rs, core.Options{Tau: sc.CARTau})
				if err == nil && res.Clean.Len() == 0 {
					t.Error("clean produced an empty table")
				}
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if mp.PeakHeapBytes > best {
				best = mp.PeakHeapBytes
			}
		}
		return best
	}
	p1 := peak(sc.CARRows)
	p10 := peak(10 * sc.CARRows)
	growth := float64(p10) / float64(p1)
	t.Logf("peak heap: %d rows = %.1fMiB, %d rows = %.1fMiB (%.1f× at 10× rows)",
		sc.CARRows, float64(p1)/(1<<20), 10*sc.CARRows, float64(p10)/(1<<20), growth)
	if growth >= 10 {
		t.Errorf("peak heap grew %.1f× across 10× table growth; want flat-per-row or better (< 10×)", growth)
	}
}
