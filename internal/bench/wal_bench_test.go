package bench

import (
	"fmt"
	"testing"

	"mlnclean/internal/wal"
)

// walPayload builds a deterministic pseudo-record of n bytes, sized like the
// serving WAL's real traffic: a session-create record is a few hundred
// bytes, a streamed tuple batch tens of KiB.
func walPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*131 + 17)
	}
	return p
}

// benchFS builds the filesystem variant under test: the crash-simulating
// in-memory FS (pure framing + checksumming cost) or a real directory
// (adds the page cache and fsync).
func benchFS(b *testing.B, impl string) wal.FS {
	b.Helper()
	switch impl {
	case "mem":
		return wal.NewMemFS(wal.FaultPlan{})
	case "dir":
		fs, err := wal.DirFS(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return fs
	}
	b.Fatalf("unknown fs impl %q", impl)
	return nil
}

// BenchmarkWALAppend measures the durable-append hot path — frame, CRC,
// write, fsync — which sits on every acknowledged session mutation of the
// serving API. The nosync variants isolate the fsync cost from the framing
// cost; the dir variants pay a real fsync per append.
func BenchmarkWALAppend(b *testing.B) {
	for _, impl := range []string{"mem", "dir"} {
		for _, size := range []int{256, 16 << 10} {
			for _, sync := range []bool{true, false} {
				b.Run(fmt.Sprintf("fs=%s/size=%d/sync=%t", impl, size, sync), func(b *testing.B) {
					lg, _, err := wal.Open(benchFS(b, impl), wal.Options{NoSync: !sync})
					if err != nil {
						b.Fatal(err)
					}
					defer lg.Close()
					payload := walPayload(size)
					b.SetBytes(int64(size))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := lg.Append(payload); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkRecovery measures restart replay: reopening a populated log and
// decoding every surviving frame. The snapshot variants compact most of the
// log first, so replay is one snapshot read plus a short record tail — the
// shape a long-running mlnserve converges to.
func BenchmarkRecovery(b *testing.B) {
	const size = 1 << 10
	for _, records := range []int{1_000, 10_000} {
		for _, snapshot := range []bool{false, true} {
			name := fmt.Sprintf("records=%d/snapshot=%t", records, snapshot)
			b.Run(name, func(b *testing.B) {
				fs := wal.NewMemFS(wal.FaultPlan{})
				lg, _, err := wal.Open(fs, wal.Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				payload := walPayload(size)
				tail := records
				if snapshot {
					// Compact all but a short tail into a snapshot sized
					// like the folded state of the logged records.
					for i := 0; i < records-16; i++ {
						if err := lg.Append(payload); err != nil {
							b.Fatal(err)
						}
					}
					if err := lg.Compact(walPayload((records - 16) * size)); err != nil {
						b.Fatal(err)
					}
					tail = 16
				}
				for i := 0; i < tail; i++ {
					if err := lg.Append(payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := lg.Close(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lg, rec, err := wal.Open(fs, wal.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if len(rec.Records) != tail || rec.Truncated() {
						b.Fatalf("recovered %d records (truncated=%t), want %d clean", len(rec.Records), rec.Truncated(), tail)
					}
					if snapshot && rec.Snapshot == nil {
						b.Fatal("snapshot not recovered")
					}
					lg.Close()
				}
			})
		}
	}
}
