package bench

import (
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/distance"
	"mlnclean/internal/distributed"
	"mlnclean/internal/errgen"
	"mlnclean/internal/eval"
	"mlnclean/internal/holoclean"
)

// ErrorSweep is the paper's error-rate axis (Figs. 6, 12–15).
var ErrorSweep = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30}

// RretSweep is the replacement-ratio axis of Fig. 7.
var RretSweep = []float64{0, 0.25, 0.5, 0.75, 1.0}

// RunResult carries everything an experiment row needs from one cleaning
// run.
type RunResult struct {
	Quality  eval.Quality
	AGP      eval.AGPQuality
	RSC      eval.RSCQuality
	FSCR     eval.FSCRQuality
	Stats    core.Stats
	Duration time.Duration
}

// injectFor corrupts the dataset's truth at the given rate and replacement
// ratio, deterministically per (scale seed, rate, rret).
func injectFor(ds *Dataset, sc Scale, rate, rret float64) (*errgen.Injection, error) {
	seed := sc.Seed*1_000_003 + int64(rate*1000)*101 + int64(rret*1000)
	return errgen.Inject(ds.Truth, ds.Rules, errgen.Config{
		Rate:             rate,
		ReplacementRatio: rret,
		Seed:             seed,
	})
}

// RunMLNClean generates errors, runs the stand-alone pipeline, and scores
// it. tau ≤ -1 means "use the dataset's tuned τ"; metric nil means
// Levenshtein.
func RunMLNClean(ds *Dataset, sc Scale, rate, rret float64, tau int, metric distance.Metric) (RunResult, error) {
	var out RunResult
	inj, err := injectFor(ds, sc, rate, rret)
	if err != nil {
		return out, err
	}
	opts := core.Options{Metric: metric, Trace: &core.Trace{}}
	if tau <= -1 {
		opts.Tau = ds.Tau
	} else {
		opts.Tau = tau
		opts.TauSet = true
	}
	start := time.Now()
	res, err := core.Clean(inj.Dirty, ds.Rules, opts)
	if err != nil {
		return out, err
	}
	out.Duration = time.Since(start)
	out.Stats = res.Stats
	out.Quality = eval.RepairQuality(ds.Truth, inj.Dirty, res.Repaired)
	if out.AGP, err = eval.AGPQualityFromTrace(opts.Trace, ds.Truth, inj.Dirty, ds.Rules); err != nil {
		return out, err
	}
	if out.RSC, err = eval.RSCQualityFromTrace(opts.Trace, ds.Truth, inj.Dirty, ds.Rules); err != nil {
		return out, err
	}
	out.FSCR = eval.FSCRQualityFromTrace(opts.Trace, ds.Truth, inj.Dirty, res.Repaired)
	return out, nil
}

// RunHoloClean generates the same errors, hands the baseline a perfect
// detection oracle (§7.2), runs it, and scores it.
func RunHoloClean(ds *Dataset, sc Scale, rate, rret float64) (RunResult, error) {
	var out RunResult
	inj, err := injectFor(ds, sc, rate, rret)
	if err != nil {
		return out, err
	}
	start := time.Now()
	res, err := holoclean.Repair(inj.Dirty, ds.Rules, inj.NoisyCells(), holoclean.Options{Seed: sc.Seed})
	if err != nil {
		return out, err
	}
	out.Duration = time.Since(start)
	out.Quality = eval.RepairQuality(ds.Truth, inj.Dirty, res.Repaired)
	return out, nil
}

// RunDistributed generates errors and runs the distributed pipeline with
// the given worker count; Duration is the modeled cluster time.
func RunDistributed(ds *Dataset, sc Scale, rate float64, workers int) (RunResult, error) {
	var out RunResult
	inj, err := injectFor(ds, sc, rate, 0.5)
	if err != nil {
		return out, err
	}
	res, err := distributed.Clean(inj.Dirty, ds.Rules, distributed.Options{
		Workers: workers,
		Seed:    sc.Seed,
		Core:    core.Options{Tau: ds.Tau},
	})
	if err != nil {
		return out, err
	}
	out.Duration = res.ClusterTime()
	out.Stats = res.Stats
	out.Quality = eval.RepairQuality(ds.Truth, inj.Dirty, res.Repaired)
	return out, nil
}
