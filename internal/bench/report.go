// Package bench regenerates every table and figure of the paper's
// evaluation (§7): the MLNClean-vs-HoloClean comparisons (Figs. 6–7), the
// parameter studies on τ and the error rate (Figs. 8–14), the distributed
// experiments (Fig. 15, Table 6), the distance-metric comparison (Table 5),
// and ablations of this implementation's documented interpretation choices.
// Each experiment returns a Report whose rows mirror the series the paper
// plots; cmd/benchrunner prints them and bench_test.go wraps them as
// testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is a printable experiment result: a titled table of rows.
type Report struct {
	// Name is the registry key, e.g. "fig6-car".
	Name string
	// Title describes the experiment, e.g. "Fig. 6(a): F1 vs error rate (CAR)".
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows, already formatted.
	Rows [][]string
	// Notes records caveats (scale substitutions, τ choices, …).
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.Name, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the report via Fprint.
func (r *Report) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
