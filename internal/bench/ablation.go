package bench

import (
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/distributed"
	"mlnclean/internal/eval"
)

// The ablation experiments quantify the documented interpretation choices
// this reproduction adds on top of the paper's letter (DESIGN.md §2):
// the FSCR minimality/observation prior, the AGP merge-distance cap, and
// the Eq. 6 weight merge (the last is the paper's own mechanism, ablated to
// show why it exists).

// AblationMinimality compares FSCR with and without the minimality /
// observation prior (ε = 0.05 vs disabled) on CAR and HAI at 5% errors.
func AblationMinimality(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-minimality",
		Title:   "Ablation: FSCR minimality/observation prior (5% errors)",
		Columns: []string{"dataset", "F1 with prior", "F1 without prior"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		with, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		without, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, MinimalityPrior: 0, MinimalityPriorSet: true})
		if err != nil {
			return nil, err
		}
		qw := eval.RepairQuality(ds.Truth, inj.Dirty, with.Repaired)
		qo := eval.RepairQuality(ds.Truth, inj.Dirty, without.Repaired)
		r.AddRow(dsName, f3(qw.F1), f3(qo.F1))
	}
	r.Notes = append(r.Notes,
		"without the prior, Eq. 5 alone decides identity-steal conflicts near-randomly (DESIGN.md §2)")
	return r, nil
}

// AblationMergeCap compares AGP with the relative merge-distance cap (0.4)
// against the paper's unconditional merge (cap ≥ 1).
func AblationMergeCap(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-mergecap",
		Title:   "Ablation: AGP merge-distance cap (5% errors)",
		Columns: []string{"dataset", "F1 cap=0.4", "F1 unconditional"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		capped, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		uncond, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, MergeCapRatio: 10})
		if err != nil {
			return nil, err
		}
		qc := eval.RepairQuality(ds.Truth, inj.Dirty, capped.Repaired)
		qu := eval.RepairQuality(ds.Truth, inj.Dirty, uncond.Repaired)
		r.AddRow(dsName, f3(qc.F1), f3(qu.F1))
	}
	r.Notes = append(r.Notes,
		"the cap matters most when groups fragment (distributed partitions); stand-alone deltas are small")
	return r, nil
}

// AblationWeightMerge compares distributed cleaning with and without the
// Eq. 6 cross-worker weight adjustment.
func AblationWeightMerge(sc Scale) (*Report, error) {
	ds, err := sc.Generate("hai")
	if err != nil {
		return nil, err
	}
	inj, err := injectFor(ds, sc, 0.05, 0.5)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    "ablation-weightmerge",
		Title:   "Ablation: Eq. 6 cross-worker weight merge (HAI, 5% errors)",
		Columns: []string{"variant", "F1", "cluster time"},
	}
	for _, skip := range []bool{false, true} {
		res, err := distributed.Clean(inj.Dirty, ds.Rules, distributed.Options{
			Workers:         sc.Workers,
			Seed:            sc.Seed,
			Core:            core.Options{Tau: ds.Tau},
			SkipWeightMerge: skip,
		})
		if err != nil {
			return nil, err
		}
		q := eval.RepairQuality(ds.Truth, inj.Dirty, res.Repaired)
		label := "with Eq. 6"
		if skip {
			label = "without Eq. 6"
		}
		r.AddRow(label, f3(q.F1), res.ClusterTime().Round(time.Millisecond).String())
	}
	r.Notes = append(r.Notes,
		"per-part weights are unreliable for fragmented groups (§6); Eq. 6 pools their support")
	return r, nil
}

// AblationAGPStrategy compares the paper's nearest-group AGP merge policy
// against the support-biased variant (the paper's §8 future-work
// direction) on CAR and HAI at 5% errors.
func AblationAGPStrategy(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-agp",
		Title:   "Ablation: AGP merge-target strategy (5% errors)",
		Columns: []string{"dataset", "F1 nearest (paper)", "F1 support-biased"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		nearest, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		biased, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, AGPStrategy: core.AGPSupportBiased})
		if err != nil {
			return nil, err
		}
		qn := eval.RepairQuality(ds.Truth, inj.Dirty, nearest.Repaired)
		qb := eval.RepairQuality(ds.Truth, inj.Dirty, biased.Repaired)
		r.AddRow(dsName, f3(qn.F1), f3(qb.F1))
	}
	r.Notes = append(r.Notes,
		"support bias prefers well-supported merge targets among comparably close groups (§8 future work)")
	return r, nil
}
