package bench

import (
	"context"
	"fmt"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/distributed"
	"mlnclean/internal/eval"
	"mlnclean/internal/index"
)

// The ablation experiments quantify the documented interpretation choices
// this reproduction adds on top of the paper's letter (DESIGN.md §2):
// the FSCR minimality/observation prior, the AGP merge-distance cap, and
// the Eq. 6 weight merge (the last is the paper's own mechanism, ablated to
// show why it exists).

// AblationMinimality compares FSCR with and without the minimality /
// observation prior (ε = 0.05 vs disabled) on CAR and HAI at 5% errors.
func AblationMinimality(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-minimality",
		Title:   "Ablation: FSCR minimality/observation prior (5% errors)",
		Columns: []string{"dataset", "F1 with prior", "F1 without prior"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		with, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		without, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, MinimalityPrior: 0, MinimalityPriorSet: true})
		if err != nil {
			return nil, err
		}
		qw := eval.RepairQuality(ds.Truth, inj.Dirty, with.Repaired)
		qo := eval.RepairQuality(ds.Truth, inj.Dirty, without.Repaired)
		r.AddRow(dsName, f3(qw.F1), f3(qo.F1))
	}
	r.Notes = append(r.Notes,
		"without the prior, Eq. 5 alone decides identity-steal conflicts near-randomly (DESIGN.md §2)")
	return r, nil
}

// AblationMergeCap compares AGP with the relative merge-distance cap (0.4)
// against the paper's unconditional merge (cap ≥ 1).
func AblationMergeCap(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-mergecap",
		Title:   "Ablation: AGP merge-distance cap (5% errors)",
		Columns: []string{"dataset", "F1 cap=0.4", "F1 unconditional"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		capped, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		uncond, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, MergeCapRatio: 10})
		if err != nil {
			return nil, err
		}
		qc := eval.RepairQuality(ds.Truth, inj.Dirty, capped.Repaired)
		qu := eval.RepairQuality(ds.Truth, inj.Dirty, uncond.Repaired)
		r.AddRow(dsName, f3(qc.F1), f3(qu.F1))
	}
	r.Notes = append(r.Notes,
		"the cap matters most when groups fragment (distributed partitions); stand-alone deltas are small")
	return r, nil
}

// AblationWeightMerge compares distributed cleaning with and without the
// Eq. 6 cross-worker weight adjustment.
func AblationWeightMerge(sc Scale) (*Report, error) {
	ds, err := sc.Generate("hai")
	if err != nil {
		return nil, err
	}
	inj, err := injectFor(ds, sc, 0.05, 0.5)
	if err != nil {
		return nil, err
	}
	r := &Report{
		Name:    "ablation-weightmerge",
		Title:   "Ablation: Eq. 6 cross-worker weight merge (HAI, 5% errors)",
		Columns: []string{"variant", "F1", "cluster time"},
	}
	for _, skip := range []bool{false, true} {
		res, err := distributed.Clean(inj.Dirty, ds.Rules, distributed.Options{
			Workers:         sc.Workers,
			Seed:            sc.Seed,
			Core:            core.Options{Tau: ds.Tau},
			SkipWeightMerge: skip,
		})
		if err != nil {
			return nil, err
		}
		q := eval.RepairQuality(ds.Truth, inj.Dirty, res.Repaired)
		label := "with Eq. 6"
		if skip {
			label = "without Eq. 6"
		}
		r.AddRow(label, f3(q.F1), res.ClusterTime().Round(time.Millisecond).String())
	}
	r.Notes = append(r.Notes,
		"per-part weights are unreliable for fragmented groups (§6); Eq. 6 pools their support")
	return r, nil
}

// AblationAGPStrategy compares the paper's nearest-group AGP merge policy
// against the support-biased variant (the paper's §8 future-work
// direction) on CAR and HAI at 5% errors.
func AblationAGPStrategy(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-agp",
		Title:   "Ablation: AGP merge-target strategy (5% errors)",
		Columns: []string{"dataset", "F1 nearest (paper)", "F1 support-biased"},
	}
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		nearest, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		biased, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, AGPStrategy: core.AGPSupportBiased})
		if err != nil {
			return nil, err
		}
		qn := eval.RepairQuality(ds.Truth, inj.Dirty, nearest.Repaired)
		qb := eval.RepairQuality(ds.Truth, inj.Dirty, biased.Repaired)
		r.AddRow(dsName, f3(qn.F1), f3(qb.F1))
	}
	r.Notes = append(r.Notes,
		"support bias prefers well-supported merge targets among comparably close groups (§8 future work)")
	return r, nil
}

// AblationPlanner compares stage I (index construction + AGP, the phases
// whose scan order the selectivity planner controls) with the planner on
// and off — and verifies, every time it runs, that the two runs repair the
// table identically: the planner reorders work, never outcomes.
func AblationPlanner(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "ablation-planner",
		Title:   "Ablation: selectivity-driven rule planner (5% errors)",
		Columns: []string{"dataset", "stage-I planned", "stage-I fixed", "plan"},
	}
	const reps = 3
	for _, dsName := range []string{"car", "hai"} {
		ds, err := sc.Generate(dsName)
		if err != nil {
			return nil, err
		}
		inj, err := injectFor(ds, sc, 0.05, 0.5)
		if err != nil {
			return nil, err
		}
		stageI := func(fixed bool) (time.Duration, error) {
			opts := core.Options{Tau: ds.Tau, DisablePlanner: fixed}
			var total time.Duration
			for i := 0; i < reps; i++ {
				t0 := time.Now()
				ix, err := index.BuildConfigured(inj.Dirty, ds.Rules, index.BuildConfig{FixedOrder: fixed})
				if err != nil {
					return 0, err
				}
				var st core.Stats
				if err := core.StageAGP(context.Background(), ix, opts, &st); err != nil {
					return 0, err
				}
				total += time.Since(t0)
			}
			return total / reps, nil
		}
		planned, err := stageI(false)
		if err != nil {
			return nil, err
		}
		fixed, err := stageI(true)
		if err != nil {
			return nil, err
		}
		// Outcome invariance check: end-to-end repairs must be identical.
		resP, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau})
		if err != nil {
			return nil, err
		}
		resF, err := core.Clean(inj.Dirty, ds.Rules, core.Options{Tau: ds.Tau, DisablePlanner: true})
		if err != nil {
			return nil, err
		}
		for i, t := range resP.Repaired.Tuples {
			ft := resF.Repaired.Tuples[i]
			for j, v := range t.Values {
				if v != ft.Values[j] {
					return nil, fmt.Errorf("bench: planner changed repairs on %s (tuple %d attr %d: %q vs %q)",
						dsName, t.ID, j, v, ft.Values[j])
				}
			}
		}
		scans := ""
		for i, c := range resP.Index.Plan().Choices() {
			if i > 0 {
				scans += " "
			}
			scans += c.Scan
		}
		r.AddRow(dsName, planned.Round(time.Millisecond).String(), fixed.Round(time.Millisecond).String(), scans)
	}
	r.Notes = append(r.Notes,
		"planned and fixed-order runs are verified byte-identical on every execution of this experiment")
	return r, nil
}
