package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
)

// MemProfile records the heap footprint of one measured run.
type MemProfile struct {
	// PeakHeapBytes is the HeapAlloc high-water observed while the measured
	// function ran: the max of a 2ms ReadMemStats sampler and the
	// before/after readings. A sampled high-water can miss sub-millisecond
	// spikes between GC cycles, but tracks the sustained working set — the
	// quantity the streaming pipeline bounds — faithfully.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// TotalAllocBytes is the cumulative allocation the run performed
	// (TotalAlloc delta), independent of when the GC reclaimed it.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
}

// MeasureMem runs fn while sampling the heap, returning its memory profile
// alongside fn's error. The heap is GC-settled before the run so the
// high-water is read against a clean floor.
func MeasureMem(fn func() error) (MemProfile, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var peak atomic.Uint64
	peak.Store(before.HeapAlloc)
	observe := func(v uint64) {
		for {
			cur := peak.Load()
			if v <= cur || peak.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				observe(ms.HeapAlloc)
			}
		}
	}()
	err := fn()
	close(stop)
	<-done
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	observe(after.HeapAlloc)
	return MemProfile{
		PeakHeapBytes:   peak.Load(),
		TotalAllocBytes: after.TotalAlloc - before.TotalAlloc,
	}, err
}

// streamMemoryMults are the table-growth factors StreamMemory measures; the
// last one is the "≥10× the benchmark scale" point of the bounded-memory
// acceptance target.
var streamMemoryMults = []int{1, 4, 10}

// StreamMemory measures the stage-I working set of the streaming pipeline
// against the materialized escape hatch across growing CAR tables: the
// streaming peak should grow sublinearly in the table (dictionary + a
// bounded window of in-flight blocks), while the materialized peak carries
// every block's full pre-RSC piece set at once.
func StreamMemory(sc Scale) (*Report, error) {
	r := &Report{
		Name:    "stream-memory",
		Title:   "Streaming pipeline peak heap vs table size (CAR)",
		Columns: []string{"rows", "stream-peak", "stream-ms", "mat-peak", "mat-ms"},
		Notes: []string{
			"peak heap = ReadMemStats HeapAlloc high-water, 2ms sampler, GC-settled floor",
			"stream = default pipeline (block iterator, fused AGP/learn/RSC); mat = Options.Materialize",
			"the input table is resident in both modes; streaming bounds the pipeline working set on top of it",
		},
	}
	for _, mult := range streamMemoryMults {
		rows := sc.CARRows * mult
		truth, rs, err := datagen.CAR(datagen.CARConfig{Rows: rows, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		profile := func(materialize bool) (MemProfile, time.Duration, error) {
			start := time.Now()
			mp, err := MeasureMem(func() error {
				_, err := core.Clean(inj.Dirty, rs, core.Options{Tau: sc.CARTau, Materialize: materialize})
				return err
			})
			return mp, time.Since(start), err
		}
		smp, sdur, err := profile(false)
		if err != nil {
			return nil, err
		}
		mmp, mdur, err := profile(true)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%d", rows),
			fmtBytes(smp.PeakHeapBytes), fmt.Sprintf("%d", sdur.Milliseconds()),
			fmtBytes(mmp.PeakHeapBytes), fmt.Sprintf("%d", mdur.Milliseconds()))
	}
	return r, nil
}

// fmtBytes renders a byte count as MiB with one decimal.
func fmtBytes(b uint64) string {
	return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
}
