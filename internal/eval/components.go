package eval

import (
	"sort"

	"mlnclean/internal/core"
	"mlnclean/internal/dataset"
	"mlnclean/internal/index"
	"mlnclean/internal/rules"
)

// AGPQuality reports the §7.3 AGP metrics.
type AGPQuality struct {
	// Precision is Precision-A: correctly merged abnormal groups over
	// detected abnormal groups.
	Precision float64
	// Recall is Recall-A: correctly merged abnormal groups over real
	// abnormal groups.
	Recall float64
	// Detected, Correct, Real are the underlying counts.
	Detected int
	Correct  int
	Real     int
	// DetectedPieces is #dag: the total number of γs inside detected
	// abnormal groups.
	DetectedPieces int
}

// trueReasonKey returns the majority ground-truth reason key of the given
// tuples under rule r.
func trueReasonKey(truth *dataset.Table, r *rules.Rule, tupleIDs []int) string {
	counts := make(map[string]int)
	for _, id := range tupleIDs {
		t := truth.Tuples[id]
		counts[dataset.JoinKey(truth.Project(t, r.ReasonAttrs()))]++
	}
	bestKey, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			bestKey, bestN = k, counts[k]
		}
	}
	return bestKey
}

// AGPQualityFromTrace computes Precision-A / Recall-A / #dag.
//
// Ground-truth definitions (the extended abstract does not spell them out;
// see DESIGN.md): a group of the dirty index is *really abnormal* when its
// observed reason key differs from the majority clean reason key of its
// member tuples — i.e. the group only exists because reason-part values were
// corrupted. A detected abnormal group is *correctly merged* when its AGP
// target group's key equals that majority clean key.
func AGPQualityFromTrace(tr *core.Trace, truth, dirty *dataset.Table, rs []*rules.Rule) (AGPQuality, error) {
	var q AGPQuality

	ruleByID := make(map[string]*rules.Rule, len(rs))
	for _, r := range rs {
		ruleByID[r.ID] = r
	}

	// Count real abnormal groups from a fresh dirty index.
	ix, err := index.Build(dirty, rs)
	if err != nil {
		return q, err
	}
	for _, b := range ix.Blocks {
		for _, g := range b.Groups {
			var ids []int
			for _, p := range g.Pieces {
				ids = append(ids, p.TupleIDs...)
			}
			if g.Key != trueReasonKey(truth, b.Rule, ids) {
				q.Real++
			}
		}
	}

	for _, m := range tr.AGP {
		if m.Promoted {
			// A promotion is bookkeeping for a degenerate block, not a
			// detected-and-merged abnormal group; counting it would deflate
			// Precision-A for runs that never merged anything.
			continue
		}
		q.Detected++
		q.DetectedPieces += m.SourcePieces
		r, ok := ruleByID[m.RuleID]
		if !ok {
			continue
		}
		want := trueReasonKey(truth, r, m.SourceTuples)
		if m.TargetKey == want && m.SourceKey != want {
			q.Correct++
		}
	}
	if q.Detected > 0 {
		q.Precision = float64(q.Correct) / float64(q.Detected)
	}
	if q.Real > 0 {
		q.Recall = float64(q.Correct) / float64(q.Real)
	} else if q.Detected == 0 {
		q.Recall = 1
		q.Precision = 1
	}
	return q, nil
}

// RSCQuality reports the §7.3 RSC metrics.
type RSCQuality struct {
	// Precision is Precision-R: correctly repaired γs over repaired γs.
	Precision float64
	// Recall is Recall-R: correctly repaired γs over γs containing errors.
	Recall    float64
	Repaired  int
	Correct   int
	Erroneous int
}

// RSCQualityFromTrace computes Precision-R / Recall-R.
//
// A repaired γ is *correct* when the winner values it was rewritten to
// match the majority ground truth of its supporting tuples on the rule's
// attributes. A γ of the dirty index *contains errors* when its observed
// values differ from that majority ground truth.
func RSCQualityFromTrace(tr *core.Trace, truth, dirty *dataset.Table, rs []*rules.Rule) (RSCQuality, error) {
	var q RSCQuality

	ix, err := index.Build(dirty, rs)
	if err != nil {
		return q, err
	}
	for _, b := range ix.Blocks {
		attrs := b.Rule.Attrs()
		for _, g := range b.Groups {
			for _, p := range g.Pieces {
				if dataset.JoinKey(p.Values()) != majorityTruthKey(truth, attrs, p.TupleIDs) {
					q.Erroneous++
				}
			}
		}
	}

	for _, rep := range tr.RSC {
		q.Repaired++
		if dataset.JoinKey(rep.New) == majorityTruthKey(truth, rep.Attrs, rep.Tuples) {
			q.Correct++
		}
	}
	if q.Repaired > 0 {
		q.Precision = float64(q.Correct) / float64(q.Repaired)
	} else if q.Erroneous == 0 {
		q.Precision = 1
	}
	if q.Erroneous > 0 {
		q.Recall = float64(q.Correct) / float64(q.Erroneous)
	} else {
		q.Recall = 1
	}
	return q, nil
}

func majorityTruthKey(truth *dataset.Table, attrs []string, tupleIDs []int) string {
	counts := make(map[string]int)
	for _, id := range tupleIDs {
		t := truth.Tuples[id]
		counts[dataset.JoinKey(truth.Project(t, attrs))]++
	}
	bestKey, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			bestKey, bestN = k, counts[k]
		}
	}
	return bestKey
}

// FSCRQuality reports the §7.3 FSCR metrics.
type FSCRQuality struct {
	// Precision is Precision-F: correctly repaired attribute values among
	// conflict-detected cells over erroneous attribute values among
	// conflict-detected cells.
	Precision float64
	// Recall is Recall-F: correctly repaired attribute values over all
	// erroneous attribute values.
	Recall            float64
	ConflictCorrect   int
	ConflictErroneous int
	Correct           int
	Erroneous         int
}

// FSCRQualityFromTrace computes Precision-F / Recall-F from the fusion
// outcomes: a cell counts as correctly repaired when stage II's final value
// equals the ground truth and the dirty value did not.
func FSCRQualityFromTrace(tr *core.Trace, truth, dirty, repaired *dataset.Table) FSCRQuality {
	var q FSCRQuality

	conflictAttrs := make(map[int]map[string]bool, len(tr.FSCR))
	for _, f := range tr.FSCR {
		if len(f.ConflictAttrs) == 0 {
			continue
		}
		m := make(map[string]bool, len(f.ConflictAttrs))
		for _, a := range f.ConflictAttrs {
			m[a] = true
		}
		conflictAttrs[f.TupleID] = m
	}
	repairedByID := make(map[int]*dataset.Tuple, repaired.Len())
	for _, t := range repaired.Tuples {
		repairedByID[t.ID] = t
	}
	for i, dt := range dirty.Tuples {
		tt := truth.Tuples[i]
		rt := repairedByID[dt.ID]
		for j := range dt.Values {
			if dt.Values[j] == tt.Values[j] {
				continue
			}
			q.Erroneous++
			attr := dirty.Schema.Attr(j)
			inConflict := conflictAttrs[dt.ID][attr]
			if inConflict {
				q.ConflictErroneous++
			}
			if rt != nil && rt.Values[j] == tt.Values[j] {
				q.Correct++
				if inConflict {
					q.ConflictCorrect++
				}
			}
		}
	}
	if q.ConflictErroneous > 0 {
		q.Precision = float64(q.ConflictCorrect) / float64(q.ConflictErroneous)
	} else {
		q.Precision = 1
	}
	if q.Erroneous > 0 {
		q.Recall = float64(q.Correct) / float64(q.Erroneous)
	} else {
		q.Recall = 1
	}
	return q
}
