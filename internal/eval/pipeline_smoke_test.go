package eval

import (
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/errgen"
)

// TestPipelineSmokeHAI runs the full loop — generate, corrupt, clean,
// score — on a small HAI instance and checks the cleaner actually cleans.
func TestPipelineSmokeHAI(t *testing.T) {
	truth, rs, err := datagen.HAI(datagen.HAIConfig{Providers: 120, Measures: 8, Seed: 7})
	if err != nil {
		t.Fatalf("HAI: %v", err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 11})
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	tr := &core.Trace{}
	res, err := core.Clean(inj.Dirty, rs, core.Options{Tau: 2, Trace: tr})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	q := RepairQuality(truth, inj.Dirty, res.Repaired)
	t.Logf("HAI 5%%: P=%.3f R=%.3f F1=%.3f (correct=%d updated=%d erroneous=%d)",
		q.Precision, q.Recall, q.F1, q.Correct, q.Updated, q.Erroneous)
	if q.F1 < 0.80 {
		t.Errorf("HAI F1 = %.3f, want ≥ 0.80", q.F1)
	}

	agp, err := AGPQualityFromTrace(tr, truth, inj.Dirty, rs)
	if err != nil {
		t.Fatalf("AGPQuality: %v", err)
	}
	rsc, err := RSCQualityFromTrace(tr, truth, inj.Dirty, rs)
	if err != nil {
		t.Fatalf("RSCQuality: %v", err)
	}
	fscr := FSCRQualityFromTrace(tr, truth, inj.Dirty, res.Repaired)
	t.Logf("AGP: P=%.3f R=%.3f detected=%d real=%d #dag=%d", agp.Precision, agp.Recall, agp.Detected, agp.Real, agp.DetectedPieces)
	t.Logf("RSC: P=%.3f R=%.3f repaired=%d erroneous=%d", rsc.Precision, rsc.Recall, rsc.Repaired, rsc.Erroneous)
	t.Logf("FSCR: P=%.3f R=%.3f", fscr.Precision, fscr.Recall)
}

// TestPipelineSmokeCAR does the same on the sparse CAR dataset.
func TestPipelineSmokeCAR(t *testing.T) {
	truth, rs, err := datagen.CAR(datagen.CARConfig{Rows: 2500, Seed: 3})
	if err != nil {
		t.Fatalf("CAR: %v", err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.05, ReplacementRatio: 0.5, Seed: 5})
	if err != nil {
		t.Fatalf("Inject: %v", err)
	}
	res, err := core.Clean(inj.Dirty, rs, core.Options{Tau: 1})
	if err != nil {
		t.Fatalf("Clean: %v", err)
	}
	q := RepairQuality(truth, inj.Dirty, res.Repaired)
	t.Logf("CAR 5%%: P=%.3f R=%.3f F1=%.3f (correct=%d updated=%d erroneous=%d)",
		q.Precision, q.Recall, q.F1, q.Correct, q.Updated, q.Erroneous)
	if q.F1 < 0.60 {
		t.Errorf("CAR F1 = %.3f, want ≥ 0.60", q.F1)
	}
}
