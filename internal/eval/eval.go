// Package eval computes the paper's accuracy metrics: overall repair
// precision/recall/F1 (Eq. 7) and the per-component metrics of §7.3 —
// Precision-A/Recall-A for AGP, Precision-R/Recall-R for RSC,
// Precision-F/Recall-F for FSCR, plus #dag (the γ count inside detected
// abnormal groups).
package eval

import (
	"mlnclean/internal/dataset"
)

// Quality is a precision/recall/F1 triple plus the underlying counts.
type Quality struct {
	Precision float64
	Recall    float64
	F1        float64

	Correct   int // correctly repaired values
	Updated   int // values changed by the cleaner
	Erroneous int // values that were dirty
}

func quality(correct, updated, erroneous int) Quality {
	q := Quality{Correct: correct, Updated: updated, Erroneous: erroneous}
	if updated > 0 {
		q.Precision = float64(correct) / float64(updated)
	} else if erroneous == 0 {
		q.Precision = 1
	}
	if erroneous > 0 {
		q.Recall = float64(correct) / float64(erroneous)
	} else {
		q.Recall = 1
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// RepairQuality scores a repaired table against the ground truth (Eq. 7):
// precision = correctly repaired / updated values, recall = correctly
// repaired / erroneous values. Tuples are matched by ID, so pass the
// pre-dedup repaired table (core.Result.Repaired).
func RepairQuality(truth, dirty, repaired *dataset.Table) Quality {
	repairedByID := make(map[int]*dataset.Tuple, repaired.Len())
	for _, t := range repaired.Tuples {
		repairedByID[t.ID] = t
	}
	var correct, updated, erroneous int
	for i, dt := range dirty.Tuples {
		tt := truth.Tuples[i]
		rt := repairedByID[dt.ID]
		for j := range dt.Values {
			dirtyV, truthV := dt.Values[j], tt.Values[j]
			repairedV := dirtyV
			if rt != nil {
				repairedV = rt.Values[j]
			}
			if dirtyV != truthV {
				erroneous++
			}
			if repairedV != dirtyV {
				updated++
				if repairedV == truthV {
					correct++
				}
			}
		}
	}
	return quality(correct, updated, erroneous)
}
