package eval

import (
	"math"
	"testing"

	"mlnclean/internal/core"
	"mlnclean/internal/datagen"
	"mlnclean/internal/dataset"
	"mlnclean/internal/errgen"
	"mlnclean/internal/rules"
)

func threeTables(t *testing.T) (truth, dirty, repaired *dataset.Table) {
	t.Helper()
	schema := dataset.MustSchema("A", "B")
	truth = dataset.NewTable(schema)
	truth.MustAppend("x", "1")
	truth.MustAppend("y", "2")
	truth.MustAppend("z", "3")

	dirty = truth.Clone()
	dirty.Tuples[0].Values[1] = "9" // error, will be fixed
	dirty.Tuples[1].Values[0] = "q" // error, will be missed

	repaired = dirty.Clone()
	repaired.Tuples[0].Values[1] = "1" // correct repair
	repaired.Tuples[2].Values[1] = "7" // wrong update of a clean cell
	return
}

func TestRepairQualityCounts(t *testing.T) {
	truth, dirty, repaired := threeTables(t)
	q := RepairQuality(truth, dirty, repaired)
	if q.Erroneous != 2 || q.Updated != 2 || q.Correct != 1 {
		t.Fatalf("counts = %+v", q)
	}
	if math.Abs(q.Precision-0.5) > 1e-12 || math.Abs(q.Recall-0.5) > 1e-12 {
		t.Errorf("P/R = %v/%v", q.Precision, q.Recall)
	}
	if math.Abs(q.F1-0.5) > 1e-12 {
		t.Errorf("F1 = %v", q.F1)
	}
}

func TestRepairQualityPerfect(t *testing.T) {
	truth, dirty, _ := threeTables(t)
	q := RepairQuality(truth, dirty, truth.Clone())
	if q.Recall != 1 || q.Precision != 1 || q.F1 != 1 {
		t.Errorf("perfect repair: %+v", q)
	}
}

func TestRepairQualityNoErrors(t *testing.T) {
	truth, _, _ := threeTables(t)
	q := RepairQuality(truth, truth.Clone(), truth.Clone())
	if q.Precision != 1 || q.Recall != 1 {
		t.Errorf("no-op on clean data: %+v", q)
	}
}

func TestRepairQualityNoRepairs(t *testing.T) {
	truth, dirty, _ := threeTables(t)
	q := RepairQuality(truth, dirty, dirty.Clone())
	if q.Updated != 0 || q.Correct != 0 || q.Recall != 0 {
		t.Errorf("no-repair run: %+v", q)
	}
}

func TestRepairQualityMissingTuple(t *testing.T) {
	// A tuple absent from the repaired table counts as unrepaired.
	truth, dirty, repaired := threeTables(t)
	repaired.Tuples = repaired.Tuples[:2]
	q := RepairQuality(truth, dirty, repaired)
	if q.Erroneous != 2 {
		t.Errorf("erroneous = %d", q.Erroneous)
	}
}

func TestAGPQualityFromTrace(t *testing.T) {
	schema := dataset.MustSchema("A", "B")
	truth := dataset.NewTable(schema)
	for i := 0; i < 4; i++ {
		truth.MustAppend("alpha", "1")
	}
	truth.MustAppend("alpha", "1") // will be typo'd
	dirty := truth.Clone()
	dirty.Tuples[4].Values[0] = "alph"

	rs := rules.MustParseStrings("FD: A -> B")
	tr := &core.Trace{}
	if _, err := core.Clean(dirty, rs, core.Options{Tau: 1, Trace: tr, KeepDuplicates: true}); err != nil {
		t.Fatal(err)
	}
	q, err := AGPQualityFromTrace(tr, truth, dirty, rs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Detected != 1 || q.Real != 1 || q.Correct != 1 {
		t.Fatalf("AGP quality: %+v", q)
	}
	if q.Precision != 1 || q.Recall != 1 {
		t.Errorf("P/R = %v/%v", q.Precision, q.Recall)
	}
	if q.DetectedPieces != 1 {
		t.Errorf("#dag = %d", q.DetectedPieces)
	}
}

func TestRSCQualityFromTrace(t *testing.T) {
	schema := dataset.MustSchema("A", "B")
	truth := dataset.NewTable(schema)
	for i := 0; i < 5; i++ {
		truth.MustAppend("k", "good")
	}
	dirty := truth.Clone()
	dirty.Tuples[4].Values[1] = "bad-but-really-good" // result-part error

	rs := rules.MustParseStrings("FD: A -> B")
	tr := &core.Trace{}
	if _, err := core.Clean(dirty, rs, core.Options{Tau: 0, TauSet: true, Trace: tr, KeepDuplicates: true}); err != nil {
		t.Fatal(err)
	}
	q, err := RSCQualityFromTrace(tr, truth, dirty, rs)
	if err != nil {
		t.Fatal(err)
	}
	if q.Repaired != 1 || q.Correct != 1 || q.Erroneous != 1 {
		t.Fatalf("RSC quality: %+v", q)
	}
}

func TestFSCRQualityFromTrace(t *testing.T) {
	truth, dirty, repaired := threeTables(t)
	tr := &core.Trace{}
	tr.FSCR = append(tr.FSCR, core.FusionOutcome{
		TupleID:       0,
		ConflictAttrs: []string{"B"},
		Changed:       []core.CellChange{{Attr: "B", Old: "9", New: "1"}},
	})
	q := FSCRQualityFromTrace(tr, truth, dirty, repaired)
	// Erroneous cells: (t0,B) and (t1,A); conflict-detected: (t0,B) which
	// was correctly repaired.
	if q.Erroneous != 2 || q.Correct != 1 || q.ConflictErroneous != 1 || q.ConflictCorrect != 1 {
		t.Fatalf("FSCR quality: %+v", q)
	}
	if q.Precision != 1 || q.Recall != 0.5 {
		t.Errorf("P/R = %v/%v", q.Precision, q.Recall)
	}
}

func TestEndToEndComponentMetricsConsistent(t *testing.T) {
	// On a real run, every component metric must be a valid probability.
	truth, dirty, rs := realRun(t)
	tr := &core.Trace{}
	res, err := core.Clean(dirty, rs, core.Options{Tau: 2, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	agp, err := AGPQualityFromTrace(tr, truth, dirty, rs)
	if err != nil {
		t.Fatal(err)
	}
	rsc, err := RSCQualityFromTrace(tr, truth, dirty, rs)
	if err != nil {
		t.Fatal(err)
	}
	fscr := FSCRQualityFromTrace(tr, truth, dirty, res.Repaired)
	for name, v := range map[string]float64{
		"Precision-A": agp.Precision, "Recall-A": agp.Recall,
		"Precision-R": rsc.Precision, "Recall-R": rsc.Recall,
		"Precision-F": fscr.Precision, "Recall-F": fscr.Recall,
	} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	if agp.Correct > agp.Detected {
		t.Error("correct merges exceed detections")
	}
	if rsc.Correct > rsc.Repaired {
		t.Error("correct repairs exceed repairs")
	}
}

func realRun(t *testing.T) (*dataset.Table, *dataset.Table, []*rules.Rule) {
	t.Helper()
	truth, rs, err := datagenHAI()
	if err != nil {
		t.Fatal(err)
	}
	inj, err := errgen.Inject(truth, rs, errgen.Config{Rate: 0.08, ReplacementRatio: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return truth, inj.Dirty, rs
}

func datagenHAI() (*dataset.Table, []*rules.Rule, error) {
	return datagen.HAI(datagen.HAIConfig{Providers: 60, Measures: 6, Seed: 23})
}
