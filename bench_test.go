// Package main_test hosts one testing.B benchmark per table and figure of
// the paper's evaluation (§7), wrapping the experiment harness in
// internal/bench. Each benchmark runs its full experiment per iteration and
// reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation at the small scale (use
// cmd/benchrunner for the default/large scales and full report tables).
package main_test

import (
	"strconv"
	"testing"

	"mlnclean/internal/bench"
)

// scale is the benchmark scale; Small keeps the full suite in CI budgets.
var scale = bench.Small

// runExperiment executes a registered experiment b.N times, reporting how
// many report rows it produced (sanity) and failing on errors.
func runExperiment(b *testing.B, name string) *bench.Report {
	b.Helper()
	var report *bench.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = bench.Run(name, scale)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
	if report == nil || len(report.Rows) == 0 {
		b.Fatalf("%s: empty report", name)
	}
	b.ReportMetric(float64(len(report.Rows)), "rows")
	return report
}

// reportF1 extracts the F1 value of the first row (the 5% error point) from
// the given column and reports it as a benchmark metric.
func reportF1(b *testing.B, r *bench.Report, col int) {
	b.Helper()
	if len(r.Rows) == 0 || col >= len(r.Rows[0]) {
		return
	}
	if f1, err := strconv.ParseFloat(r.Rows[0][col], 64); err == nil {
		b.ReportMetric(f1, "F1@5%")
	}
}

// BenchmarkFig6CAR regenerates Fig. 6(a)+(c): F1 and runtime vs error rate
// on CAR, MLNClean vs HoloClean.
func BenchmarkFig6CAR(b *testing.B) { reportF1(b, runExperiment(b, "fig6-car"), 1) }

// BenchmarkFig6HAI regenerates Fig. 6(b)+(d) on HAI.
func BenchmarkFig6HAI(b *testing.B) { reportF1(b, runExperiment(b, "fig6-hai"), 1) }

// BenchmarkFig7CAR regenerates Fig. 7(a): F1 vs error-type ratio on CAR.
func BenchmarkFig7CAR(b *testing.B) { reportF1(b, runExperiment(b, "fig7-car"), 1) }

// BenchmarkFig7HAI regenerates Fig. 7(b) on HAI.
func BenchmarkFig7HAI(b *testing.B) { reportF1(b, runExperiment(b, "fig7-hai"), 1) }

// BenchmarkFig8CAR regenerates Fig. 8(a): AGP accuracy vs τ on CAR.
func BenchmarkFig8CAR(b *testing.B) { runExperiment(b, "fig8-car") }

// BenchmarkFig8HAI regenerates Fig. 8(b) on HAI.
func BenchmarkFig8HAI(b *testing.B) { runExperiment(b, "fig8-hai") }

// BenchmarkFig9CAR regenerates Fig. 9(a): RSC accuracy vs τ on CAR.
func BenchmarkFig9CAR(b *testing.B) { runExperiment(b, "fig9-car") }

// BenchmarkFig9HAI regenerates Fig. 9(b) on HAI.
func BenchmarkFig9HAI(b *testing.B) { runExperiment(b, "fig9-hai") }

// BenchmarkFig10CAR regenerates Fig. 10(a): FSCR accuracy vs τ on CAR.
func BenchmarkFig10CAR(b *testing.B) { runExperiment(b, "fig10-car") }

// BenchmarkFig10HAI regenerates Fig. 10(b) on HAI.
func BenchmarkFig10HAI(b *testing.B) { runExperiment(b, "fig10-hai") }

// BenchmarkFig11CAR regenerates Fig. 11(a): overall F1 + runtime vs τ, CAR.
func BenchmarkFig11CAR(b *testing.B) { runExperiment(b, "fig11-car") }

// BenchmarkFig11HAI regenerates Fig. 11(b) on HAI.
func BenchmarkFig11HAI(b *testing.B) { runExperiment(b, "fig11-hai") }

// BenchmarkFig12CAR regenerates Fig. 12(a): AGP accuracy vs error rate, CAR.
func BenchmarkFig12CAR(b *testing.B) { runExperiment(b, "fig12-car") }

// BenchmarkFig12HAI regenerates Fig. 12(b) on HAI.
func BenchmarkFig12HAI(b *testing.B) { runExperiment(b, "fig12-hai") }

// BenchmarkFig13CAR regenerates Fig. 13(a): RSC accuracy vs error rate, CAR.
func BenchmarkFig13CAR(b *testing.B) { runExperiment(b, "fig13-car") }

// BenchmarkFig13HAI regenerates Fig. 13(b) on HAI.
func BenchmarkFig13HAI(b *testing.B) { runExperiment(b, "fig13-hai") }

// BenchmarkFig14CAR regenerates Fig. 14(a): FSCR accuracy vs error rate, CAR.
func BenchmarkFig14CAR(b *testing.B) { runExperiment(b, "fig14-car") }

// BenchmarkFig14HAI regenerates Fig. 14(b) on HAI.
func BenchmarkFig14HAI(b *testing.B) { runExperiment(b, "fig14-hai") }

// BenchmarkFig15HAI regenerates Fig. 15(a): distributed MLNClean vs error
// rate on HAI.
func BenchmarkFig15HAI(b *testing.B) { runExperiment(b, "fig15-hai") }

// BenchmarkFig15TPCH regenerates Fig. 15(b) on TPC-H.
func BenchmarkFig15TPCH(b *testing.B) { runExperiment(b, "fig15-tpch") }

// BenchmarkTable5 regenerates Table 5: F1 under Levenshtein vs cosine.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table 6: distributed runtime vs workers.
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkAblationMinimality ablates the FSCR minimality/observation prior.
func BenchmarkAblationMinimality(b *testing.B) { runExperiment(b, "ablation-minimality") }

// BenchmarkAblationMergeCap ablates the AGP merge-distance cap.
func BenchmarkAblationMergeCap(b *testing.B) { runExperiment(b, "ablation-mergecap") }

// BenchmarkAblationWeightMerge ablates the Eq. 6 weight merge.
func BenchmarkAblationWeightMerge(b *testing.B) { runExperiment(b, "ablation-weightmerge") }

// BenchmarkAblationAGP compares the paper's nearest-group AGP merge policy
// with the support-biased future-work variant.
func BenchmarkAblationAGP(b *testing.B) { runExperiment(b, "ablation-agp") }
