module mlnclean

go 1.23
