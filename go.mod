module mlnclean

go 1.24
